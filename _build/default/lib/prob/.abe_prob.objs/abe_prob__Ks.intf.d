lib/prob/ks.mli: Dist
