lib/prob/fit.mli: Format
