lib/prob/rng.mli:
