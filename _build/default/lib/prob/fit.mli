(** Least-squares fits and growth-shape classification.

    Used by the experiment harness to check the paper's complexity claims:
    e.g. that the average message count of the election algorithm grows
    {e linearly} in the ring size, whereas comparison algorithms grow like
    [n log n]. *)

type line = {
  intercept : float;
  slope : float;
  r2 : float;  (** coefficient of determination *)
}

val linear : (float * float) array -> line
(** Ordinary least squares [y = intercept + slope * x].
    Requires at least two points with distinct [x]. *)

val proportional : (float * float) array -> line
(** Least squares through the origin, [y = slope * x] (intercept fixed
    at 0); [r2] is computed against the mean-centred total sum of
    squares. *)

val loglog : (float * float) array -> line
(** Least squares on [(log x, log y)]: [slope] is the power-law exponent
    [beta] in [y ~ x^beta] — the noise-robust way to distinguish linear
    ([beta ~ 1]) from super-linear growth.  Requires positive data. *)

type growth = Constant | Logarithmic | Linear | Linearithmic | Quadratic

val pp_growth : Format.formatter -> growth -> unit
val growth_to_string : growth -> string

val classify_growth : (float * float) array -> growth
(** [classify_growth points] fits [y] against [1], [log x], [x],
    [x log x] and [x²] (each by proportional least squares on the
    transformed abscissa, with an intercept) and returns the model with the
    smallest residual sum of squares.  Points must have [x >= 2]. *)

val residual_rss : (float * float) array -> growth -> float
(** Residual sum of squares of the best fit under the given model. *)
