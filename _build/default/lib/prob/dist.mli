(** Delay distributions with analytic moments.

    A {!t} describes a non-negative random delay.  Every constructor
    validates its parameters, and the analytic {!mean} (and {!variance},
    where it exists) is available so that experiments can build families of
    distributions with a {e common} expected value — the defining knob of the
    ABE network model, where only a bound on the expected delay is known.

    Distributions with unbounded support (exponential, Lomax,
    geometric retransmission, hyper-exponential) model ABE-but-not-ABD
    delays; bounded-support distributions (deterministic, uniform) model ABD
    delays. *)

type t =
  | Deterministic of float
      (** Always the given value (>= 0). *)
  | Uniform of { lo : float; hi : float }
      (** Uniform on [\[lo, hi\]], [0 <= lo < hi]. *)
  | Exponential of { mean : float }
      (** Exponential with the given mean (> 0); unbounded support. *)
  | Erlang of { shape : int; mean : float }
      (** Sum of [shape] iid exponential stages with total mean [mean]. *)
  | Hyperexponential of { branches : (float * float) array }
      (** Mixture of exponentials: [(weight, mean)] pairs; weights sum to 1.
          High squared coefficient of variation — bursty delays. *)
  | Lomax of { alpha : float; scale : float }
      (** Pareto type II (heavy tail).  Mean [scale /. (alpha -. 1.)]
          requires [alpha > 1]. *)
  | Retransmission of { success : float; slot : float }
      (** Section 1(iii) of the paper: each transmission attempt takes
          [slot] time and succeeds with probability [success]; the delay is
          [slot * number_of_attempts] where the attempt count is
          geometric.  Mean [slot /. success]; unbounded support. *)
  | Shifted of { base : t; offset : float }
      (** [base + offset], [offset >= 0]. *)
  | Scaled of { base : t; factor : float }
      (** [factor * base], [factor > 0]. *)
  | Mixture of (float * t) array
      (** Finite mixture; weights must be positive and sum to 1. *)

val validate : t -> unit
(** @raise Invalid_argument if any parameter is out of range. *)

(** {1 Smart constructors} (validated) *)

val deterministic : float -> t
val uniform : lo:float -> hi:float -> t
val exponential : mean:float -> t
val erlang : shape:int -> mean:float -> t

val hyperexponential_cv2 : mean:float -> cv2:float -> t
(** Two-branch balanced hyper-exponential with the given mean and squared
    coefficient of variation [cv2 >= 1]. *)

val lomax : alpha:float -> mean:float -> t
(** Lomax with the given tail index [alpha > 1] and mean. *)

val retransmission : success:float -> slot:float -> t
val shifted : t -> offset:float -> t
val scaled : t -> factor:float -> t
val mixture : (float * t) array -> t

(** {1 Sampling and moments} *)

val sample : t -> Rng.t -> float
(** Draw one value.  Always non-negative. *)

val mean : t -> float
(** Analytic expected value. *)

val variance : t -> float option
(** Analytic variance; [None] when it does not exist (e.g. Lomax with
    [alpha <= 2]). *)

val cv2 : t -> float option
(** Squared coefficient of variation, [variance /. mean²]. *)

val cdf : t -> float -> float option
(** [cdf d x] is [P(X <= x)] when a closed form exists ([None] for Erlang
    with shape > 1 and for mixtures containing such components).  Used by
    the Kolmogorov–Smirnov checks in {!Ks}. *)

val bounded_support : t -> bool
(** [true] iff the delay has a finite upper bound — i.e. the distribution is
    admissible for an {e ABD} network.  Every distribution here has a finite
    mean and is admissible for an {e ABE} network. *)

val support_upper_bound : t -> float option
(** The least upper bound of the support, when finite. *)

val with_mean : t -> mean:float -> t
(** Rescale the distribution so that its mean becomes [mean] (> 0). *)

val same_mean_family : mean:float -> (string * t) list
(** The distribution family used by the robustness experiment (E9):
    deterministic, uniform, exponential, Erlang-4, hyper-exponential with
    cv² = 4, Lomax α = 2.5 and geometric retransmission with p = 0.25 — all
    with the given mean. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
