(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256++ seeded through SplitMix64, giving
    high-quality 64-bit output streams that are fully reproducible from an
    integer seed.  Reproducibility is essential for the simulation harness:
    every experiment records its seed, and re-running with the same seed
    replays the exact execution.

    [split] derives a statistically independent generator; it is used to give
    every node, channel and clock of a simulated network its own stream, so
    that the random choices of one component do not perturb another when the
    network layout changes. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed]. *)

val copy : t -> t
(** [copy t] is a generator with identical state; both produce the same
    subsequent stream. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val unit_float : t -> float
(** Uniform float in [\[0,1)] with 53 bits of precision. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)].  [bound] must be positive
    and finite. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform in [\[lo, hi)].  Requires [lo < hi]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] without modulo bias.
    Requires [0 < bound]. *)

val int_range : t -> lo:int -> hi:int -> int
(** Uniform integer in [\[lo, hi\]] (inclusive).  Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p].  Requires
    [0. <= p <= 1.]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean ([mean > 0]). *)

val geometric : t -> p:float -> int
(** [geometric t ~p] is the number of Bernoulli([p]) trials up to and
    including the first success (support [{1, 2, ...}], mean [1/p]).
    Requires [0 < p <= 1]. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian sample via Box–Muller.  Requires [sigma >= 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  Requires a non-empty array. *)
