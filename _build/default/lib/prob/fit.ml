type line = {
  intercept : float;
  slope : float;
  r2 : float;
}

let check_points points min_points name =
  if Array.length points < min_points then
    invalid_arg (Printf.sprintf "Fit.%s: needs at least %d points" name min_points)

let sum f points = Array.fold_left (fun acc p -> acc +. f p) 0. points

let r2_of ~points ~predict =
  let n = float_of_int (Array.length points) in
  let mean_y = sum snd points /. n in
  let ss_tot = sum (fun (_, y) -> (y -. mean_y) ** 2.) points in
  let ss_res = sum (fun (x, y) -> (y -. predict x) ** 2.) points in
  if ss_tot = 0. then (if ss_res = 0. then 1. else 0.) else 1. -. (ss_res /. ss_tot)

let linear points =
  check_points points 2 "linear";
  let n = float_of_int (Array.length points) in
  let sx = sum fst points and sy = sum snd points in
  let sxx = sum (fun (x, _) -> x *. x) points in
  let sxy = sum (fun (x, y) -> x *. y) points in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Fit.linear: all x identical";
  let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. n in
  let r2 = r2_of ~points ~predict:(fun x -> intercept +. (slope *. x)) in
  { intercept; slope; r2 }

let proportional points =
  check_points points 1 "proportional";
  let sxx = sum (fun (x, _) -> x *. x) points in
  let sxy = sum (fun (x, y) -> x *. y) points in
  if sxx = 0. then invalid_arg "Fit.proportional: all x zero";
  let slope = sxy /. sxx in
  let r2 = r2_of ~points ~predict:(fun x -> slope *. x) in
  { intercept = 0.; slope; r2 }

let loglog points =
  check_points points 2 "loglog";
  Array.iter
    (fun (x, y) ->
       if not (x > 0. && y > 0.) then
         invalid_arg "Fit.loglog: requires positive coordinates")
    points;
  linear (Array.map (fun (x, y) -> (log x, log y)) points)

type growth = Constant | Logarithmic | Linear | Linearithmic | Quadratic

let growth_to_string = function
  | Constant -> "O(1)"
  | Logarithmic -> "O(log n)"
  | Linear -> "O(n)"
  | Linearithmic -> "O(n log n)"
  | Quadratic -> "O(n^2)"

let pp_growth ppf g = Format.pp_print_string ppf (growth_to_string g)

let transform = function
  | Constant -> fun _ -> 1.
  | Logarithmic -> log
  | Linear -> fun x -> x
  | Linearithmic -> fun x -> x *. log x
  | Quadratic -> fun x -> x *. x

let residual_rss points model =
  check_points points 2 "residual_rss";
  Array.iter
    (fun (x, _) ->
       if x < 2. then invalid_arg "Fit.residual_rss: points must have x >= 2")
    points;
  let f = transform model in
  let transformed = Array.map (fun (x, y) -> (f x, y)) points in
  (* Fit with an intercept: y = a + b * f(x).  For Constant the transformed
     abscissa is degenerate, so fall back to the mean. *)
  match model with
  | Constant ->
    let n = float_of_int (Array.length points) in
    let mean_y = sum snd points /. n in
    sum (fun (_, y) -> (y -. mean_y) ** 2.) points
  | _ ->
    let { intercept; slope; _ } = linear transformed in
    sum (fun (fx, y) -> (y -. (intercept +. (slope *. fx))) ** 2.) transformed

let classify_growth points =
  check_points points 3 "classify_growth";
  let models = [ Constant; Logarithmic; Linear; Linearithmic; Quadratic ] in
  let scored = List.map (fun m -> (m, residual_rss points m)) models in
  let best =
    List.fold_left
      (fun (bm, br) (m, r) -> if r < br then (m, r) else (bm, br))
      (List.hd scored |> fst, List.hd scored |> snd)
      (List.tl scored)
  in
  fst best
