(** One-sample Kolmogorov–Smirnov goodness-of-fit test.

    Used to validate the samplers against their analytic CDFs (and, in
    user code, to check whether an empirical delay trace is compatible with
    a modelled distribution).  Valid for {e continuous} distributions; for
    step CDFs (deterministic, geometric retransmission) the test is
    conservative. *)

val statistic : samples:float array -> cdf:(float -> float) -> float
(** The KS statistic [D_n = sup_x |F_n(x) - F(x)|] (both one-sided
    deviations are considered).  [samples] need not be sorted; it must be
    non-empty.  [cdf] must be a proper CDF (monotone, into [\[0,1\]]). *)

val critical_value : n:int -> alpha:float -> float
(** Asymptotic critical value [c(alpha) / sqrt n] with
    [c(0.10) = 1.224], [c(0.05) = 1.358], [c(0.01) = 1.628].
    Only these three levels are supported. *)

type verdict = {
  d_statistic : float;
  threshold : float;
  accept : bool;  (** [d_statistic <= threshold] *)
}

val test : samples:float array -> cdf:(float -> float) -> alpha:float -> verdict
(** Full test at significance level [alpha]. *)

val test_dist :
  samples:float array -> dist:Dist.t -> alpha:float -> verdict option
(** Convenience wrapper testing against {!Dist.cdf}; [None] when the
    distribution has no closed-form CDF. *)
