type t =
  | Deterministic of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Erlang of { shape : int; mean : float }
  | Hyperexponential of { branches : (float * float) array }
  | Lomax of { alpha : float; scale : float }
  | Retransmission of { success : float; slot : float }
  | Shifted of { base : t; offset : float }
  | Scaled of { base : t; factor : float }
  | Mixture of (float * t) array

let positive name x = if not (x > 0. && Float.is_finite x) then
    invalid_arg (Printf.sprintf "Dist.%s: must be positive and finite (got %g)" name x)

let non_negative name x = if not (x >= 0. && Float.is_finite x) then
    invalid_arg (Printf.sprintf "Dist.%s: must be non-negative and finite (got %g)" name x)

let rec validate = function
  | Deterministic v -> non_negative "deterministic" v
  | Uniform { lo; hi } ->
    non_negative "uniform lo" lo;
    positive "uniform hi" hi;
    if not (lo < hi) then invalid_arg "Dist.uniform: requires lo < hi"
  | Exponential { mean } -> positive "exponential mean" mean
  | Erlang { shape; mean } ->
    if shape < 1 then invalid_arg "Dist.erlang: shape must be >= 1";
    positive "erlang mean" mean
  | Hyperexponential { branches } ->
    if Array.length branches = 0 then invalid_arg "Dist.hyperexponential: no branches";
    let total = Array.fold_left (fun acc (w, m) ->
        positive "hyperexponential weight" w;
        positive "hyperexponential branch mean" m;
        acc +. w)
        0. branches
    in
    if Float.abs (total -. 1.) > 1e-9 then
      invalid_arg "Dist.hyperexponential: weights must sum to 1"
  | Lomax { alpha; scale } ->
    positive "lomax scale" scale;
    if not (alpha > 1.) then invalid_arg "Dist.lomax: alpha must be > 1 for a finite mean"
  | Retransmission { success; slot } ->
    positive "retransmission slot" slot;
    if not (success > 0. && success <= 1.) then
      invalid_arg "Dist.retransmission: success probability outside (0,1]"
  | Shifted { base; offset } -> non_negative "shifted offset" offset; validate base
  | Scaled { base; factor } -> positive "scaled factor" factor; validate base
  | Mixture branches ->
    if Array.length branches = 0 then invalid_arg "Dist.mixture: no branches";
    let total = Array.fold_left (fun acc (w, d) ->
        positive "mixture weight" w; validate d; acc +. w)
        0. branches
    in
    if Float.abs (total -. 1.) > 1e-9 then invalid_arg "Dist.mixture: weights must sum to 1"

let checked d = validate d; d

let deterministic v = checked (Deterministic v)
let uniform ~lo ~hi = checked (Uniform { lo; hi })
let exponential ~mean = checked (Exponential { mean })
let erlang ~shape ~mean = checked (Erlang { shape; mean })

let hyperexponential_cv2 ~mean ~cv2 =
  positive "hyperexponential mean" mean;
  if cv2 < 1. then invalid_arg "Dist.hyperexponential_cv2: cv2 must be >= 1";
  if cv2 = 1. then Exponential { mean }
  else begin
    (* Balanced-means two-branch H2 fit: p1 m1 = p2 m2 = mean / 2. *)
    let p1 = 0.5 *. (1. +. sqrt ((cv2 -. 1.) /. (cv2 +. 1.))) in
    let p2 = 1. -. p1 in
    let m1 = mean /. (2. *. p1) and m2 = mean /. (2. *. p2) in
    checked (Hyperexponential { branches = [| (p1, m1); (p2, m2) |] })
  end

let lomax ~alpha ~mean =
  positive "lomax mean" mean;
  if not (alpha > 1.) then invalid_arg "Dist.lomax: alpha must be > 1";
  checked (Lomax { alpha; scale = mean *. (alpha -. 1.) })

let retransmission ~success ~slot = checked (Retransmission { success; slot })
let shifted base ~offset = checked (Shifted { base; offset })
let scaled base ~factor = checked (Scaled { base; factor })
let mixture branches = checked (Mixture branches)

let rec sample d rng =
  match d with
  | Deterministic v -> v
  | Uniform { lo; hi } -> Rng.float_range rng ~lo ~hi
  | Exponential { mean } -> Rng.exponential rng ~mean
  | Erlang { shape; mean } ->
    let stage_mean = mean /. float_of_int shape in
    let rec add acc k =
      if k = 0 then acc else add (acc +. Rng.exponential rng ~mean:stage_mean) (k - 1)
    in
    add 0. shape
  | Hyperexponential { branches } ->
    let u = Rng.unit_float rng in
    let rec pick i acc =
      if i = Array.length branches - 1 then snd branches.(i)
      else
        let w, m = branches.(i) in
        if u < acc +. w then m else pick (i + 1) (acc +. w)
    in
    Rng.exponential rng ~mean:(pick 0 0.)
  | Lomax { alpha; scale } ->
    let u = 1. -. Rng.unit_float rng in
    scale *. ((u ** (-1. /. alpha)) -. 1.)
  | Retransmission { success; slot } ->
    slot *. float_of_int (Rng.geometric rng ~p:success)
  | Shifted { base; offset } -> offset +. sample base rng
  | Scaled { base; factor } -> factor *. sample base rng
  | Mixture branches ->
    let u = Rng.unit_float rng in
    let rec pick i acc =
      if i = Array.length branches - 1 then snd branches.(i)
      else
        let w, d' = branches.(i) in
        if u < acc +. w then d' else pick (i + 1) (acc +. w)
    in
    sample (pick 0 0.) rng

let rec mean = function
  | Deterministic v -> v
  | Uniform { lo; hi } -> 0.5 *. (lo +. hi)
  | Exponential { mean } -> mean
  | Erlang { mean; _ } -> mean
  | Hyperexponential { branches } ->
    Array.fold_left (fun acc (w, m) -> acc +. (w *. m)) 0. branches
  | Lomax { alpha; scale } -> scale /. (alpha -. 1.)
  | Retransmission { success; slot } -> slot /. success
  | Shifted { base; offset } -> offset +. mean base
  | Scaled { base; factor } -> factor *. mean base
  | Mixture branches ->
    Array.fold_left (fun acc (w, d) -> acc +. (w *. mean d)) 0. branches

(* Second raw moment, used for variances of compound distributions. *)
let rec second_moment = function
  | Deterministic v -> Some (v *. v)
  | Uniform { lo; hi } -> Some (((lo *. lo) +. (lo *. hi) +. (hi *. hi)) /. 3.)
  | Exponential { mean } -> Some (2. *. mean *. mean)
  | Erlang { shape; mean } ->
    let k = float_of_int shape in
    let var = mean *. mean /. k in
    Some (var +. (mean *. mean))
  | Hyperexponential { branches } ->
    Some (Array.fold_left (fun acc (w, m) -> acc +. (w *. 2. *. m *. m)) 0. branches)
  | Lomax { alpha; scale } ->
    if alpha > 2. then
      Some (2. *. scale *. scale /. ((alpha -. 1.) *. (alpha -. 2.)))
    else None
  | Retransmission { success; slot } ->
    (* trials ~ Geometric(p): E[T] = 1/p, Var[T] = (1-p)/p². *)
    let p = success in
    let et = 1. /. p in
    let vart = (1. -. p) /. (p *. p) in
    Some (slot *. slot *. (vart +. (et *. et)))
  | Shifted { base; offset } ->
    Option.map
      (fun m2 -> m2 +. (2. *. offset *. mean base) +. (offset *. offset))
      (second_moment base)
  | Scaled { base; factor } ->
    Option.map (fun m2 -> factor *. factor *. m2) (second_moment base)
  | Mixture branches ->
    Array.fold_left
      (fun acc (w, d) ->
         match acc, second_moment d with
         | Some acc, Some m2 -> Some (acc +. (w *. m2))
         | _ -> None)
      (Some 0.) branches

let variance d =
  match second_moment d with
  | None -> None
  | Some m2 ->
    let m = mean d in
    Some (Float.max 0. (m2 -. (m *. m)))

let cv2 d =
  match variance d with
  | None -> None
  | Some v ->
    let m = mean d in
    if m = 0. then None else Some (v /. (m *. m))

(* Closed-form CDFs where they exist. *)
let rec cdf d x =
  if x < 0. then Some 0.
  else
    match d with
    | Deterministic v -> Some (if x >= v then 1. else 0.)
    | Uniform { lo; hi } ->
      Some (if x <= lo then 0. else if x >= hi then 1. else (x -. lo) /. (hi -. lo))
    | Exponential { mean } -> Some (1. -. exp (-.x /. mean))
    | Erlang { shape; mean } ->
      if shape = 1 then cdf (Exponential { mean }) x else None
    | Hyperexponential { branches } ->
      Some
        (Array.fold_left
           (fun acc (w, m) -> acc +. (w *. (1. -. exp (-.x /. m))))
           0. branches)
    | Lomax { alpha; scale } ->
      Some (1. -. ((1. +. (x /. scale)) ** -.alpha))
    | Retransmission { success; slot } ->
      (* Delay = slot * Geometric(p): a step function. *)
      let trials = Float.to_int (Float.floor (x /. slot)) in
      Some (1. -. ((1. -. success) ** float_of_int trials))
    | Shifted { base; offset } -> cdf base (x -. offset)
    | Scaled { base; factor } -> cdf base (x /. factor)
    | Mixture branches ->
      Array.fold_left
        (fun acc (w, d') ->
           match acc, cdf d' x with
           | Some acc, Some f -> Some (acc +. (w *. f))
           | _ -> None)
        (Some 0.) branches

let rec support_upper_bound = function
  | Deterministic v -> Some v
  | Uniform { hi; _ } -> Some hi
  | Exponential _ | Erlang _ | Hyperexponential _ | Lomax _ | Retransmission _ -> None
  | Shifted { base; offset } ->
    Option.map (fun b -> b +. offset) (support_upper_bound base)
  | Scaled { base; factor } ->
    Option.map (fun b -> b *. factor) (support_upper_bound base)
  | Mixture branches ->
    Array.fold_left
      (fun acc (_, d) ->
         match acc, support_upper_bound d with
         | Some a, Some b -> Some (Float.max a b)
         | _ -> None)
      (Some 0.) branches

let bounded_support d = Option.is_some (support_upper_bound d)

let with_mean d ~mean:target =
  positive "with_mean target" target;
  let current = mean d in
  if current = 0. then invalid_arg "Dist.with_mean: distribution has zero mean";
  if Float.abs (current -. target) < 1e-12 *. target then d
  else scaled d ~factor:(target /. current)

let same_mean_family ~mean:m =
  [ ("deterministic", deterministic m);
    ("uniform", uniform ~lo:0. ~hi:(2. *. m));
    ("erlang-4", erlang ~shape:4 ~mean:m);
    ("exponential", exponential ~mean:m);
    ("hyperexp-cv2=4", hyperexponential_cv2 ~mean:m ~cv2:4.);
    ("lomax-2.5", lomax ~alpha:2.5 ~mean:m);
    ("retransmission-p=0.25", retransmission ~success:0.25 ~slot:(m *. 0.25)) ]

let rec pp ppf = function
  | Deterministic v -> Fmt.pf ppf "det(%g)" v
  | Uniform { lo; hi } -> Fmt.pf ppf "unif[%g,%g]" lo hi
  | Exponential { mean } -> Fmt.pf ppf "exp(mean=%g)" mean
  | Erlang { shape; mean } -> Fmt.pf ppf "erlang(k=%d,mean=%g)" shape mean
  | Hyperexponential { branches } ->
    Fmt.pf ppf "hyperexp(%a)"
      Fmt.(array ~sep:comma (pair ~sep:(any ":") float float))
      branches
  | Lomax { alpha; scale } -> Fmt.pf ppf "lomax(alpha=%g,scale=%g)" alpha scale
  | Retransmission { success; slot } -> Fmt.pf ppf "retx(p=%g,slot=%g)" success slot
  | Shifted { base; offset } -> Fmt.pf ppf "%a+%g" pp base offset
  | Scaled { base; factor } -> Fmt.pf ppf "%g*%a" factor pp base
  | Mixture branches ->
    Fmt.pf ppf "mix(%a)" Fmt.(array ~sep:semi (pair ~sep:(any "*") float pp)) branches

let to_string d = Fmt.str "%a" pp d
