module type S = sig
  type state
  type message

  val name : string
  val init : node:int -> n:int -> out_degree:int -> rng:Abe_prob.Rng.t -> state

  val pulse :
    node:int ->
    pulse:int ->
    out_degree:int ->
    state ->
    inbox:message list ->
    state * (int * message) list

  val pp_state : Format.formatter -> state -> unit
  val pp_message : Format.formatter -> message -> unit
end

module Bfs = struct
  type state = {
    distance : int option;
    relayed : bool;
  }

  type message = int  (* the sender's BFS distance *)

  let name = "bfs-broadcast"

  let init ~node ~n:_ ~out_degree:_ ~rng:_ =
    { distance = (if node = 0 then Some 0 else None); relayed = false }

  let all_links out_degree value = List.init out_degree (fun l -> (l, value))

  let pulse ~node:_ ~pulse:_ ~out_degree state ~inbox =
    (* Adopt the smallest distance offered, if still unlabelled. *)
    let state =
      match state.distance, inbox with
      | None, _ :: _ ->
        let best = List.fold_left min max_int inbox in
        { state with distance = Some (best + 1) }
      | (None | Some _), _ -> state
    in
    match state with
    | { distance = Some d; relayed = false } ->
      ({ state with relayed = true }, all_links out_degree d)
    | { distance = Some _; relayed = true } | { distance = None; _ } -> (state, [])

  let distance state = state.distance

  let pp_state ppf s =
    Fmt.pf ppf "bfs(dist=%a,relayed=%b)"
      Fmt.(option ~none:(any "?") int)
      s.distance s.relayed

  let pp_message = Format.pp_print_int
end

module Flood_max = struct
  type state = { value : int }
  type message = int

  let name = "flood-max"

  let create_value ~node = node + 1

  let init ~node ~n:_ ~out_degree:_ ~rng:_ = { value = create_value ~node }

  let pulse ~node:_ ~pulse:_ ~out_degree state ~inbox =
    let value = List.fold_left max state.value inbox in
    ({ value }, List.init out_degree (fun l -> (l, value)))

  let current_max state = state.value

  let pp_state ppf s = Fmt.pf ppf "flood(max=%d)" s.value
  let pp_message = Format.pp_print_int
end
