module Make (A : Sync_alg.S) = struct
  type run = {
    states : A.state array;
    pulses : int;
    payload_messages : int;
    payload_per_pulse : int list;
  }

  let run ~seed ~topology ~pulses =
    if pulses < 1 then invalid_arg "Reference.run: pulses must be >= 1";
    let open Abe_net in
    let n = Topology.node_count topology in
    let master = Abe_prob.Rng.create ~seed in
    let rngs = Array.init n (fun _ -> Abe_prob.Rng.split master) in
    let states =
      Array.init n (fun node ->
          A.init ~node ~n ~out_degree:(Topology.out_degree topology node)
            ~rng:rngs.(node))
    in
    (* inboxes.(v): messages delivered to v at the next pulse (reversed). *)
    let inboxes = Array.make n [] in
    let total = ref 0 in
    let per_pulse = ref [] in
    for pulse = 1 to pulses do
      let deliveries = Array.map List.rev inboxes in
      Array.fill inboxes 0 n [];
      let this_pulse = ref 0 in
      for node = 0 to n - 1 do
        let out = Topology.out_links topology node in
        let state', sends =
          A.pulse ~node ~pulse ~out_degree:(Array.length out) states.(node)
            ~inbox:deliveries.(node)
        in
        states.(node) <- state';
        List.iter
          (fun (link_index, message) ->
             if link_index < 0 || link_index >= Array.length out then
               invalid_arg "Reference.run: algorithm used an invalid link index";
             let dst = out.(link_index).Topology.dst in
             inboxes.(dst) <- message :: inboxes.(dst);
             incr this_pulse;
             incr total)
          sends
      done;
      per_pulse := !this_pulse :: !per_pulse
    done;
    { states;
      pulses;
      payload_messages = !total;
      payload_per_pulse = List.rev !per_pulse }
end
