lib/synchronizer/gamma.mli: Abe_net Abe_prob Sync_alg
