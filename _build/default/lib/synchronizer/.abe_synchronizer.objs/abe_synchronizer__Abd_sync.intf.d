lib/synchronizer/abd_sync.mli: Abe_net Abe_prob Sync_alg
