lib/synchronizer/gamma.ml: Abe_net Abe_sim Array Clock Fmt Hashtbl List Network Option Printf Queue Sync_alg Topology
