lib/synchronizer/abd_sync.ml: Abe_net Abe_sim Array Clock Float Fmt Hashtbl List Network Option Sync_alg Topology
