lib/synchronizer/measure.mli: Format
