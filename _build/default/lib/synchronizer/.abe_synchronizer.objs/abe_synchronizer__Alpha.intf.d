lib/synchronizer/alpha.mli: Abe_net Abe_prob Sync_alg
