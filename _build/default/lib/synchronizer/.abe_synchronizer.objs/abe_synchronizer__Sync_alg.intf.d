lib/synchronizer/sync_alg.mli: Abe_prob Format
