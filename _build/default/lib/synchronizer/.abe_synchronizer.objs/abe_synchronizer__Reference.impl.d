lib/synchronizer/reference.ml: Abe_net Abe_prob Array List Sync_alg Topology
