lib/synchronizer/beta.mli: Abe_net Abe_prob Sync_alg
