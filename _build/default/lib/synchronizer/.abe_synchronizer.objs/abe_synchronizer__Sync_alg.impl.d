lib/synchronizer/sync_alg.ml: Abe_prob Fmt Format List
