lib/synchronizer/alpha.ml: Abe_net Abe_sim Array Clock Fmt Hashtbl List Network Option Printf Sync_alg Topology
