lib/synchronizer/reference.mli: Abe_net Sync_alg
