lib/synchronizer/measure.ml: Abd_sync Abe_net Alpha Array Beta Clock Delay_model Fmt Option Reference Sync_alg Topology
