(** Reference synchronous executor: runs a {!Sync_alg.S} on an arbitrary
    topology in perfect lockstep.  This is the ground truth that
    synchronisers must reproduce, and the source of per-pulse payload
    message counts. *)

module Make (A : Sync_alg.S) : sig
  type run = {
    states : A.state array;        (** node states after the last pulse *)
    pulses : int;                  (** pulses executed *)
    payload_messages : int;        (** total algorithm messages *)
    payload_per_pulse : int list;  (** message count of each pulse *)
  }

  val run : seed:int -> topology:Abe_net.Topology.t -> pulses:int -> run
  (** Execute exactly [pulses] pulses. *)
end
