(** Synchronous algorithms, as run by a synchroniser.

    A synchronous algorithm proceeds in pulses: in every pulse a node
    consumes the messages sent to it in the previous pulse and emits
    messages on outgoing links.  The same algorithm can be executed on the
    {!Reference} synchronous engine (ground truth), over the {!Alpha}
    synchroniser (correct on any asynchronous/ABE network, at the Theorem-1
    cost of ≥ n messages per round) or over the timeout-based {!Abd_sync}
    synchroniser (message-free, correct only under a hard delay bound). *)

module type S = sig
  type state
  type message

  val name : string

  val init : node:int -> n:int -> out_degree:int -> rng:Abe_prob.Rng.t -> state

  val pulse :
    node:int ->
    pulse:int ->
    out_degree:int ->
    state ->
    inbox:message list ->
    state * (int * message) list
  (** One pulse: consume last pulse's arrivals, return the new state and the
      messages to send as [(out_link_index, message)] pairs.  Pulses are
      numbered from 1; pulse 1 has an empty inbox. *)

  val pp_state : Format.formatter -> state -> unit
  val pp_message : Format.formatter -> message -> unit
end

(** Synchronous BFS broadcast from node 0.

    Pulse 1: node 0 sends distance 0 to its neighbours.  A node that learns
    its distance in pulse [p] relays [distance + 1] once, in pulse [p + 1].
    The algorithm is deliberately {e sparse}: each node transmits at most
    once per link over the whole execution, so a synchroniser's own message
    cost stands out against the payload. *)
module Bfs : sig
  include S

  val distance : state -> int option
  (** The node's BFS distance from node 0, once known. *)
end

(** Synchronous flooding maximum: every node starts with a token value and
    every pulse sends its current maximum on all links (dense traffic).
    After [diameter] pulses all nodes agree on the global maximum. *)
module Flood_max : sig
  include S

  val create_value : node:int -> int
  (** The initial value of a node ([node + 1], so the expected global
      maximum is [n]). *)

  val current_max : state -> int
end
