lib/election/itai_rodeh.ml: Abe_prob Array Fmt List Sync_ring
