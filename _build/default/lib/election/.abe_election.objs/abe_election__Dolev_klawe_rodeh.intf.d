lib/election/dolev_klawe_rodeh.mli: Format
