lib/election/async_baselines.mli: Abe_net Format
