lib/election/async_baselines.ml: Abe_net Abe_prob Array Chang_roberts Delay_model Fmt Format Itai_rodeh Network Option Topology
