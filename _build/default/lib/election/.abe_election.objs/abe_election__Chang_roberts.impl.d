lib/election/chang_roberts.ml: Abe_prob Array Fmt Format List Sync_ring
