lib/election/sync_ring.ml: Abe_prob Array Format List
