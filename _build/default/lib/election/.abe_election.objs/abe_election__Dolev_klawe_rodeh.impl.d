lib/election/dolev_klawe_rodeh.ml: Abe_prob Array Fmt List Sync_ring
