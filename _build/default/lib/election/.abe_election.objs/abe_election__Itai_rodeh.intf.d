lib/election/itai_rodeh.mli: Format
