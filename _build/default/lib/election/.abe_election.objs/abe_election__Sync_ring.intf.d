lib/election/sync_ring.mli: Abe_prob Format
