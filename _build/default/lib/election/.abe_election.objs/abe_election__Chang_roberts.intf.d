lib/election/chang_roberts.mli: Format
