open Abe_net

type outcome = {
  elected : bool;
  leader : int option;
  leader_count : int;
  elected_at : float;
  messages : int;
}

let pp_outcome ppf o =
  Fmt.pf ppf "elected=%b leader=%a time=%.3f messages=%d" o.elected
    Fmt.(option ~none:(any "-") int)
    o.leader o.elected_at o.messages

let default_delay delay =
  match delay with
  | Some d -> d
  | None -> Delay_model.abe_exponential ~delta:1.

(* ------------------------------------------------------ Chang-Roberts *)

module Cr_net = Network.Make (struct
    type state = Chang_roberts.state
    type message = int

    let pp_state = Chang_roberts.pp_state
    let pp_message = Format.pp_print_int
  end)

let chang_roberts ?delay ?(limit_time = 1e7) ?(limit_events = 100_000_000)
    ~seed ~n () =
  if n < 2 then invalid_arg "Async_baselines.chang_roberts: n must be >= 2";
  let ids = Array.init n (fun i -> i + 1) in
  Abe_prob.Rng.shuffle (Abe_prob.Rng.create ~seed) ids;
  let elected_at = ref nan in
  let leader = ref None in
  let handlers : Cr_net.handlers =
    { init =
        (fun ctx ->
           let id = ids.(ctx.Cr_net.node) in
           ctx.Cr_net.send 0 id;
           Chang_roberts.Contending { id });
      on_tick = (fun _ctx st -> st);
      on_message =
        (fun ctx st candidate ->
           let st', reaction = Chang_roberts.transition st candidate in
           (match reaction with
            | Chang_roberts.Forward -> ctx.Cr_net.send 0 candidate
            | Chang_roberts.Win ->
              elected_at := ctx.Cr_net.now ();
              leader := Some ctx.Cr_net.node;
              ctx.Cr_net.stop ()
            | Chang_roberts.Drop -> ());
           st') }
  in
  let config =
    { (Cr_net.default_config ~topology:(Topology.ring n)
         ~delay:(default_delay delay))
      with Cr_net.ticks_enabled = false }
  in
  let net =
    Cr_net.create ~limit_time ~limit_events ~seed:(seed + 1) config handlers
  in
  ignore (Cr_net.run net);
  let leader_count =
    Array.fold_left
      (fun acc st ->
         match st with Chang_roberts.Leader _ -> acc + 1 | _ -> acc)
      0 (Cr_net.states net)
  in
  { elected = Option.is_some !leader;
    leader = !leader;
    leader_count;
    elected_at = !elected_at;
    messages = (Cr_net.stats net).Network.sent }

(* --------------------------------------------------------- Itai-Rodeh *)

module Ir_net = Network.Make (struct
    type state = Itai_rodeh.phase_state
    type message = Itai_rodeh.token

    let pp_state ppf = function
      | Itai_rodeh.Active { phase; id } ->
        Fmt.pf ppf "active(phase=%d,id=%d)" phase id
      | Itai_rodeh.Passive -> Fmt.pf ppf "passive"
      | Itai_rodeh.Leader { phase } -> Fmt.pf ppf "leader(phase=%d)" phase

    let pp_message ppf (t : Itai_rodeh.token) =
      Fmt.pf ppf "(phase=%d,id=%d,hop=%d,bit=%b)" t.Itai_rodeh.phase
        t.Itai_rodeh.id t.Itai_rodeh.hop t.Itai_rodeh.bit
  end)

let itai_rodeh ?delay ?(limit_time = 1e7) ?(limit_events = 100_000_000) ~seed
    ~n () =
  if n < 2 then invalid_arg "Async_baselines.itai_rodeh: n must be >= 2";
  let elected_at = ref nan in
  let leader = ref None in
  let handlers : Ir_net.handlers =
    { init =
        (fun ctx ->
           let id = Abe_prob.Rng.int_range ctx.Ir_net.rng ~lo:1 ~hi:n in
           ctx.Ir_net.send 0
             { Itai_rodeh.phase = 1; id; hop = 1; bit = true };
           Itai_rodeh.Active { phase = 1; id });
      on_tick = (fun _ctx st -> st);
      on_message =
        (fun ctx st token ->
           let fresh_id () = Abe_prob.Rng.int_range ctx.Ir_net.rng ~lo:1 ~hi:n in
           let st', reaction = Itai_rodeh.transition ~n ~fresh_id st token in
           (match reaction with
            | Itai_rodeh.Relay token' | Itai_rodeh.Launch token' ->
              ctx.Ir_net.send 0 token'
            | Itai_rodeh.Won ->
              elected_at := ctx.Ir_net.now ();
              leader := Some ctx.Ir_net.node;
              ctx.Ir_net.stop ()
            | Itai_rodeh.Discard -> ());
           st') }
  in
  let config =
    { (Ir_net.default_config ~topology:(Topology.ring n)
         ~delay:(default_delay delay))
      with
      Ir_net.ticks_enabled = false;
      (* The asynchronous Itai-Rodeh algorithm assumes FIFO links — unlike
         the paper's election, which tolerates arbitrary reordering. *)
      fifo = true }
  in
  let net =
    Ir_net.create ~limit_time ~limit_events ~seed:(seed + 1) config handlers
  in
  ignore (Ir_net.run net);
  let leader_count =
    Array.fold_left
      (fun acc st ->
         match st with Itai_rodeh.Leader _ -> acc + 1 | _ -> acc)
      0 (Ir_net.states net)
  in
  { elected = Option.is_some !leader;
    leader = !leader;
    leader_count;
    elected_at = !elected_at;
    messages = (Ir_net.stats net).Network.sent }
