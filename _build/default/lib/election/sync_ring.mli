(** Synchronous unidirectional ring engine.

    Executes round-based protocols on a ring of [n] nodes: messages sent in
    round [r] are delivered to the successor at the start of round [r + 1],
    in sending order.  This is the classical synchronous model in which the
    Itai–Rodeh bounds are stated, and the reference model that synchronisers
    simulate.

    Time is measured in rounds; the message count is the number of
    single-hop transmissions. *)

module type PROTOCOL = sig
  type state
  type message

  val pp_state : Format.formatter -> state -> unit
  val pp_message : Format.formatter -> message -> unit
end

module Make (P : PROTOCOL) : sig
  type t

  type context = {
    node : int;
    n : int;
    round : unit -> int;
    rng : Abe_prob.Rng.t;
    send : P.message -> unit;  (** to the ring successor, next round *)
    stop : unit -> unit;
  }

  type handlers = {
    init : context -> P.state;
        (** runs in round 0; may already send *)
    on_round : context -> P.state -> P.message list -> P.state;
        (** one round: the messages the predecessor sent last round,
            in sending order (possibly empty) *)
  }

  val create : seed:int -> n:int -> handlers -> t

  type outcome =
    | Stopped of int     (** a handler called [stop] in this round *)
    | Quiescent of int   (** no messages in flight and none sent *)
    | Round_limit

  val run : ?max_rounds:int -> t -> outcome
  (** Execute rounds until stopped, quiescent, or the limit (default
      [1_000_000]) is reached. *)

  val state : t -> int -> P.state
  val states : t -> P.state array
  val round : t -> int
  val messages_sent : t -> int
  val messages_per_round : t -> int list
  (** Message count of each executed round, oldest first. *)
end
