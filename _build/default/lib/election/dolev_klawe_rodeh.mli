(** Dolev–Klawe–Rodeh leader election on unidirectional rings with unique
    identifiers — the classic {e deterministic} [O(n log n)] algorithm.

    Active nodes work in phases.  In a phase, every active node sends its
    current value, then relays the value it received, so each active node
    learns the values [v2, v1] of its two nearest active predecessors.  It
    survives the phase iff [v1] is a local maximum ([v1 > v2] and
    [v1 > cv]), in which case it adopts [v1].  At most half the active
    nodes survive each phase, giving at most [log2 n] phases of at most
    [2n] messages.  A node receiving its own current value back is the sole
    survivor and becomes leader (it holds the maximum identifier).

    Together with Chang–Roberts this exhibits the [Ω(n log n)]
    message-complexity class for rings with identities that the paper's ABE
    election undercuts with its average [O(n)]. *)

type outcome = {
  elected : bool;
  leader : int option;  (** ring position of the surviving node *)
  leader_count : int;
  rounds : int;
  phases : int;    (** phases completed by the winner *)
  messages : int;
}

val run : ?max_rounds:int -> seed:int -> n:int -> unit -> outcome
val pp_outcome : Format.formatter -> outcome -> unit
