module type PROTOCOL = sig
  type state
  type message

  val pp_state : Format.formatter -> state -> unit
  val pp_message : Format.formatter -> message -> unit
end

module Make (P : PROTOCOL) = struct
  type context = {
    node : int;
    n : int;
    round : unit -> int;
    rng : Abe_prob.Rng.t;
    send : P.message -> unit;
    stop : unit -> unit;
  }

  type t = {
    n : int;
    handlers : handlers;
    mutable states : P.state array;
    mutable contexts : context array;
    inboxes : P.message list array;   (* per node, next round's input, reversed *)
    outboxes : P.message list array;  (* per node, sent this round, reversed *)
    mutable current_round : int;
    mutable total_messages : int;
    mutable per_round : int list;     (* newest first *)
    mutable stop_requested : bool;
  }

  and handlers = {
    init : context -> P.state;
    on_round : context -> P.state -> P.message list -> P.state;
  }

  let create ~seed ~n handlers =
    if n < 2 then invalid_arg "Sync_ring.create: n must be >= 2";
    let master = Abe_prob.Rng.create ~seed in
    let rngs = Array.init n (fun _ -> Abe_prob.Rng.split master) in
    let t =
      { n;
        handlers;
        states = [||];
        contexts = [||];
        inboxes = Array.make n [];
        outboxes = Array.make n [];
        current_round = 0;
        total_messages = 0;
        per_round = [];
        stop_requested = false }
    in
    let make_context node =
      { node;
        n;
        round = (fun () -> t.current_round);
        rng = rngs.(node);
        send =
          (fun message ->
             t.total_messages <- t.total_messages + 1;
             t.outboxes.(node) <- message :: t.outboxes.(node));
        stop = (fun () -> t.stop_requested <- true) }
    in
    t.contexts <- Array.init n make_context;
    t.states <- Array.map handlers.init t.contexts;
    t

  type outcome =
    | Stopped of int
    | Quiescent of int
    | Round_limit

  (* Move this round's outboxes to the successors' inboxes. *)
  let flush_outboxes t =
    let moved = ref 0 in
    for node = 0 to t.n - 1 do
      let sent = List.rev t.outboxes.(node) in
      t.outboxes.(node) <- [];
      moved := !moved + List.length sent;
      let successor = (node + 1) mod t.n in
      t.inboxes.(successor) <- t.inboxes.(successor) @ sent
    done;
    !moved

  let run ?(max_rounds = 1_000_000) t =
    (* Deliver anything init sent. *)
    if t.current_round = 0 then begin
      let sent = flush_outboxes t in
      t.per_round <- sent :: t.per_round
    end;
    let rec loop () =
      if t.stop_requested then Stopped t.current_round
      else if t.current_round >= max_rounds then Round_limit
      else begin
        let in_flight = Array.exists (fun inbox -> inbox <> []) t.inboxes in
        if not in_flight then Quiescent t.current_round
        else begin
          t.current_round <- t.current_round + 1;
          (* Snapshot the inboxes: everything delivered this round. *)
          let deliveries = Array.copy t.inboxes in
          Array.fill t.inboxes 0 t.n [];
          for node = 0 to t.n - 1 do
            t.states.(node) <-
              t.handlers.on_round t.contexts.(node) t.states.(node)
                deliveries.(node)
          done;
          let sent = flush_outboxes t in
          t.per_round <- sent :: t.per_round;
          loop ()
        end
      end
    in
    loop ()

  let state t i = t.states.(i)
  let states t = Array.copy t.states
  let round t = t.current_round
  let messages_sent t = t.total_messages
  let messages_per_round t = List.rev t.per_round
end
