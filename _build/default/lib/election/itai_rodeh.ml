type token = {
  phase : int;
  id : int;    (* random identifier in 1..n *)
  hop : int;   (* hops travelled so far, 1..n *)
  bit : bool;  (* true while no identifier tie has been observed *)
}

type phase_state =
  | Active of { phase : int; id : int }
  | Passive
  | Leader of { phase : int }

type state = phase_state

module Proto = struct
  type nonrec state = state
  type message = token

  let pp_state ppf = function
    | Active { phase; id } -> Fmt.pf ppf "active(phase=%d,id=%d)" phase id
    | Passive -> Fmt.pf ppf "passive"
    | Leader { phase } -> Fmt.pf ppf "leader(phase=%d)" phase

  let pp_message ppf t =
    Fmt.pf ppf "(phase=%d,id=%d,hop=%d,bit=%b)" t.phase t.id t.hop t.bit
end

module Ring = Sync_ring.Make (Proto)

let fresh_id rng n = Abe_prob.Rng.int_range rng ~lo:1 ~hi:n

(* The algorithm's pure core, shared by the synchronous-ring executor below
   and the ABE-network adapter (Async_baselines).  Requires FIFO links. *)
type reaction =
  | Relay of token        (* forward (possibly bit-flagged) *)
  | Launch of token       (* tie among maxima: start the next phase *)
  | Won                   (* own token returned unbeaten *)
  | Discard               (* weaker or stale token *)

let transition ~n ~fresh_id state token =
  match state with
  | Passive -> (Passive, Relay { token with hop = token.hop + 1 })
  | Leader _ -> (state, Discard)
  | Active { phase; id } ->
    if (token.phase, token.id) = (phase, id) then
      if token.hop = n then
        if token.bit then (Leader { phase }, Won)
        else begin
          let id' = fresh_id () in
          ( Active { phase = phase + 1; id = id' },
            Launch { phase = phase + 1; id = id'; hop = 1; bit = true } )
        end
      else (state, Relay { token with hop = token.hop + 1; bit = false })
    else if (token.phase, token.id) > (phase, id) then
      (Passive, Relay { token with hop = token.hop + 1 })
    else (state, Discard)

type outcome = {
  elected : bool;
  leader : int option;
  leader_count : int;
  rounds : int;
  phases : int;
  messages : int;
}

let run ?max_rounds ~seed ~n () =
  if n < 2 then invalid_arg "Itai_rodeh.run: n must be >= 2";
  let handlers : Ring.handlers =
    { init =
        (fun ctx ->
           let id = fresh_id ctx.Ring.rng n in
           ctx.Ring.send { phase = 1; id; hop = 1; bit = true };
           Active { phase = 1; id });
      on_round =
        (fun ctx st incoming ->
           (* Tokens are processed in arrival order; the state may change
              between tokens of the same round. *)
           List.fold_left
             (fun st token ->
                let fresh_id () = fresh_id ctx.Ring.rng n in
                let st', reaction = transition ~n ~fresh_id st token in
                (match reaction with
                 | Relay token' | Launch token' -> ctx.Ring.send token'
                 | Won -> ctx.Ring.stop ()
                 | Discard -> ());
                st')
             st incoming) }
  in
  let ring = Ring.create ~seed ~n handlers in
  let outcome = Ring.run ?max_rounds ring in
  let states = Ring.states ring in
  let leaders =
    Array.to_list states
    |> List.filteri (fun _ st -> match st with Leader _ -> true | _ -> false)
  in
  let leader_index =
    let found = ref None in
    Array.iteri
      (fun i st -> match st with Leader _ -> found := Some i | _ -> ())
      states;
    !found
  in
  let phases =
    match leader_index with
    | Some i -> (match states.(i) with Leader { phase } -> phase | _ -> 0)
    | None -> 0
  in
  let rounds =
    match outcome with
    | Ring.Stopped r | Ring.Quiescent r -> r
    | Ring.Round_limit -> Ring.round ring
  in
  { elected = leader_index <> None;
    leader = leader_index;
    leader_count = List.length leaders;
    rounds;
    phases;
    messages = Ring.messages_sent ring }

let pp_outcome ppf o =
  Fmt.pf ppf "elected=%b leader=%a rounds=%d phases=%d messages=%d" o.elected
    Fmt.(option ~none:(any "-") int)
    o.leader o.rounds o.phases o.messages
