type message =
  | First of int   (* the sender's current value *)
  | Second of int  (* relayed value of the sender's nearest active predecessor *)

type state =
  | Active of {
      cv : int;            (* current value *)
      phase : int;
      pending : int option; (* v1, once the First of this phase arrived *)
    }
  | Passive
  | Leader of { cv : int; phase : int }

module Proto = struct
  type nonrec state = state
  type nonrec message = message

  let pp_state ppf = function
    | Active { cv; phase; pending } ->
      Fmt.pf ppf "active(cv=%d,phase=%d,pending=%a)" cv phase
        Fmt.(option ~none:(any "-") int)
        pending
    | Passive -> Fmt.pf ppf "passive"
    | Leader { cv; phase } -> Fmt.pf ppf "leader(cv=%d,phase=%d)" cv phase

  let pp_message ppf = function
    | First v -> Fmt.pf ppf "first(%d)" v
    | Second v -> Fmt.pf ppf "second(%d)" v
end

module Ring = Sync_ring.Make (Proto)

type outcome = {
  elected : bool;
  leader : int option;
  leader_count : int;
  rounds : int;
  phases : int;
  messages : int;
}

let run ?max_rounds ~seed ~n () =
  if n < 2 then invalid_arg "Dolev_klawe_rodeh.run: n must be >= 2";
  let ids = Array.init n (fun i -> i + 1) in
  Abe_prob.Rng.shuffle (Abe_prob.Rng.create ~seed) ids;
  let handlers : Ring.handlers =
    { init =
        (fun ctx ->
           let cv = ids.(ctx.Ring.node) in
           ctx.Ring.send (First cv);
           Active { cv; phase = 1; pending = None });
      on_round =
        (fun ctx st incoming ->
           List.fold_left
             (fun st message ->
                match st, message with
                | Leader _, _ -> st
                | Passive, _ ->
                  ctx.Ring.send message;
                  Passive
                | Active { cv; phase; pending = None }, First v1 ->
                  if v1 = cv then begin
                    (* Own value returned: sole remaining active node. *)
                    ctx.Ring.stop ();
                    Leader { cv; phase }
                  end
                  else begin
                    (* Learned the nearest active predecessor's value;
                       relay it so the successor learns its v2. *)
                    ctx.Ring.send (Second v1);
                    Active { cv; phase; pending = Some v1 }
                  end
                | Active { cv; phase; pending = Some v1 }, Second v2 ->
                  if v1 > v2 && v1 > cv then begin
                    (* v1 is a local maximum among active values: survive
                       into the next phase holding it. *)
                    ctx.Ring.send (First v1);
                    Active { cv = v1; phase = phase + 1; pending = None }
                  end
                  else
                    (* v1 is not a local maximum: retire to relaying. *)
                    Passive
                | Active _, First _ | Active _, Second _ ->
                  (* Protocol violation: in a phase an active node receives
                     exactly one First then one Second. *)
                  assert false)
             st incoming) }
  in
  let ring = Ring.create ~seed:(seed + 1) ~n handlers in
  let outcome = Ring.run ?max_rounds ring in
  let states = Ring.states ring in
  let leader =
    let found = ref None in
    Array.iteri
      (fun i st -> match st with Leader _ -> found := Some i | _ -> ())
      states;
    !found
  in
  let leader_count =
    Array.fold_left
      (fun acc st -> match st with Leader _ -> acc + 1 | _ -> acc)
      0 states
  in
  let phases =
    match leader with
    | Some i -> (match states.(i) with Leader { phase; _ } -> phase | _ -> 0)
    | None -> 0
  in
  let rounds =
    match outcome with
    | Ring.Stopped r | Ring.Quiescent r -> r
    | Ring.Round_limit -> Ring.round ring
  in
  { elected = leader <> None;
    leader;
    leader_count;
    rounds;
    phases;
    messages = Ring.messages_sent ring }

let pp_outcome ppf o =
  Fmt.pf ppf "elected=%b leader=%a rounds=%d phases=%d messages=%d" o.elected
    Fmt.(option ~none:(any "-") int)
    o.leader o.rounds o.phases o.messages
