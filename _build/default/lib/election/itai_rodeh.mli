(** Itai–Rodeh leader election for anonymous, unidirectional, synchronous
    rings of known size [n] (reference [4] of the paper).

    Election proceeds in {e phases}.  Every active node draws a random
    identifier from [{1..n}] and sends a token [(phase, id, hop, bit)] around
    the ring.  Passive nodes relay tokens (incrementing [hop]).  An active
    node receiving a token compares [(phase, id)] lexicographically with its
    own: a larger token knocks it passive, a smaller one is purged, an equal
    one (an identifier tie, [hop < n]) is relayed with [bit = false].  A
    token returning to its originator ([hop = n]) with [bit] still [true]
    proves a unique maximum: leader.  With [bit = false] the maxima are tied
    and the tied nodes re-draw in the next phase.

    This is the algorithm against which the paper positions the ABE
    election: "efficiency comparable to the most optimal leader election
    algorithms known for anonymous, synchronous rings". *)

(** {1 Pure core}

    Exposed so the ABE-network adapter ({!Async_baselines}) executes the
    identical state machine; also convenient for unit tests. *)

type token = {
  phase : int;
  id : int;    (** random identifier in [1..n] *)
  hop : int;
  bit : bool;  (** [true] while no identifier tie has been observed *)
}

type phase_state =
  | Active of { phase : int; id : int }
  | Passive
  | Leader of { phase : int }

type reaction =
  | Relay of token   (** forward (hop incremented, possibly bit-flagged) *)
  | Launch of token  (** tie among the maxima: next phase begins *)
  | Won              (** own token returned unbeaten: leader *)
  | Discard          (** weaker or stale token: purge *)

val transition :
  n:int -> fresh_id:(unit -> int) -> phase_state -> token ->
  phase_state * reaction
(** One token receipt.  [fresh_id] draws a new random identifier when a new
    phase starts.  Requires FIFO delivery between consecutive active
    nodes. *)

type outcome = {
  elected : bool;
  leader : int option;
  leader_count : int;
  rounds : int;          (** synchronous rounds executed *)
  phases : int;          (** election phases used by the winner *)
  messages : int;        (** single-hop transmissions *)
}

val run : ?max_rounds:int -> seed:int -> n:int -> unit -> outcome
(** One complete election.  Deterministic in [seed].
    Default [max_rounds = 1_000_000]. *)

val pp_outcome : Format.formatter -> outcome -> unit
