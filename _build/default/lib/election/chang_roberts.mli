(** Chang–Roberts leader election on unidirectional rings {e with unique
    identifiers}.

    Every node sends its identifier around the ring; a node relays only
    identifiers larger than its own, purges smaller ones, and is elected
    when its own identifier returns.  Average message complexity is
    [n·H_n ≈ n ln n] over random identifier orderings ([Ω(n log n)] — the
    asynchronous-ring lower bound the paper contrasts with), worst case
    [O(n²)].

    Identifiers are a random permutation of [1..n] drawn from the seed, so
    repeated runs average over orderings. *)

(** {1 Pure core} *)

type state =
  | Contending of { id : int }  (** still a candidate *)
  | Relaying of { id : int }    (** beaten; relays larger identifiers *)
  | Leader of { id : int }

type reaction = Forward | Win | Drop

val transition : state -> int -> state * reaction
(** React to an incoming candidate identifier. *)

val pp_state : Format.formatter -> state -> unit

type outcome = {
  elected : bool;
  leader : int option;  (** ring position of the max-identifier node *)
  leader_count : int;
  rounds : int;
  messages : int;
}

val run : ?max_rounds:int -> seed:int -> n:int -> unit -> outcome
val pp_outcome : Format.formatter -> outcome -> unit
