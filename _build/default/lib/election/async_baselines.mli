(** Baseline election algorithms on the {e ABE network substrate}.

    The synchronous-ring versions ({!Itai_rodeh}, {!Chang_roberts}) measure
    complexity in the model where their classical bounds are stated.  These
    adapters run the same algorithms over {!Abe_net.Network} with random
    (unbounded, mean-δ) delays, drifting clocks and the rest of the ABE
    semantics, so that like-for-like comparisons with the paper's election
    can also be made on a single substrate:

    - Chang–Roberts is oblivious to timing: its message complexity is
      unchanged by the ABE delays;
    - Itai–Rodeh as presented for asynchronous rings requires FIFO
      channels; the adapter enables per-link FIFO delivery (the paper's
      election needs no such assumption — "the order of messages is
      arbitrary between any pair of nodes"). *)

type outcome = {
  elected : bool;
  leader : int option;
  leader_count : int;
  elected_at : float;   (** real simulation time; [nan] if not elected *)
  messages : int;
}

val chang_roberts :
  ?delay:Abe_net.Delay_model.t ->
  ?limit_time:float ->
  ?limit_events:int ->
  seed:int ->
  n:int ->
  unit ->
  outcome
(** Chang–Roberts on a unidirectional ABE ring (non-FIFO, exponential
    mean-1 delay by default).  Identifiers are a seed-derived random
    permutation of [1..n]. *)

val itai_rodeh :
  ?delay:Abe_net.Delay_model.t ->
  ?limit_time:float ->
  ?limit_events:int ->
  seed:int ->
  n:int ->
  unit ->
  outcome
(** Itai–Rodeh on a unidirectional ABE ring with FIFO links. *)

val pp_outcome : Format.formatter -> outcome -> unit
