type state =
  | Contending of { id : int }
  | Relaying of { id : int }
  | Leader of { id : int }

type reaction = Forward | Win | Drop

(* Pure core, shared with the ABE-network adapter (Async_baselines). *)
let transition state candidate =
  match state with
  | Leader _ -> (state, Drop)
  | Relaying { id } -> (state, if candidate > id then Forward else Drop)
  | Contending { id } ->
    if candidate = id then (Leader { id }, Win)
    else if candidate > id then (Relaying { id }, Forward)
    else (state, Drop)

let pp_state ppf = function
  | Contending { id } -> Fmt.pf ppf "contending(%d)" id
  | Relaying { id } -> Fmt.pf ppf "relaying(%d)" id
  | Leader { id } -> Fmt.pf ppf "leader(%d)" id

module Proto = struct
  type nonrec state = state
  type message = int  (* a candidate identifier *)

  let pp_state = pp_state
  let pp_message = Format.pp_print_int
end

module Ring = Sync_ring.Make (Proto)

type outcome = {
  elected : bool;
  leader : int option;
  leader_count : int;
  rounds : int;
  messages : int;
}

let run ?max_rounds ~seed ~n () =
  if n < 2 then invalid_arg "Chang_roberts.run: n must be >= 2";
  (* Unique identifiers: a seed-determined random permutation of 1..n.
     The permutation is global setup, not node-local randomness — CR is an
     algorithm for non-anonymous rings. *)
  let ids = Array.init n (fun i -> i + 1) in
  Abe_prob.Rng.shuffle (Abe_prob.Rng.create ~seed) ids;
  let handlers : Ring.handlers =
    { init =
        (fun ctx ->
           let id = ids.(ctx.Ring.node) in
           ctx.Ring.send id;
           Contending { id });
      on_round =
        (fun ctx st incoming ->
           List.fold_left
             (fun st candidate ->
                let st', reaction = transition st candidate in
                (match reaction with
                 | Forward -> ctx.Ring.send candidate
                 | Win -> ctx.Ring.stop ()
                 | Drop -> ());
                st')
             st incoming) }
  in
  let ring = Ring.create ~seed:(seed + 1) ~n handlers in
  let outcome = Ring.run ?max_rounds ring in
  let states = Ring.states ring in
  let leader =
    let found = ref None in
    Array.iteri
      (fun i st -> match st with Leader _ -> found := Some i | _ -> ())
      states;
    !found
  in
  let leader_count =
    Array.fold_left
      (fun acc st -> match st with Leader _ -> acc + 1 | _ -> acc)
      0 states
  in
  let rounds =
    match outcome with
    | Ring.Stopped r | Ring.Quiescent r -> r
    | Ring.Round_limit -> Ring.round ring
  in
  { elected = leader <> None;
    leader;
    leader_count;
    rounds;
    messages = Ring.messages_sent ring }

let pp_outcome ppf o =
  Fmt.pf ppf "elected=%b leader=%a rounds=%d messages=%d" o.elected
    Fmt.(option ~none:(any "-") int)
    o.leader o.rounds o.messages
