type t = {
  delta : float;
  gamma : float;
  clock : Abe_net.Clock.spec;
}

let make ~delta ~gamma ~clock =
  if not (delta > 0. && Float.is_finite delta) then
    invalid_arg "Params.make: delta must be positive and finite";
  if not (gamma >= 0. && Float.is_finite gamma) then
    invalid_arg "Params.make: gamma must be non-negative and finite";
  { delta; gamma; clock }

let default = { delta = 1.; gamma = 0.; clock = Abe_net.Clock.perfect }

let with_delta t delta = make ~delta ~gamma:t.gamma ~clock:t.clock
let with_gamma t gamma = make ~delta:t.delta ~gamma ~clock:t.clock
let with_clock t clock = make ~delta:t.delta ~gamma:t.gamma ~clock

let tolerance = 1e-9

let admits_delay t model =
  Abe_net.Delay_model.expected_delay model <= t.delta *. (1. +. tolerance)

let admits_processing t proc =
  match proc with
  | None -> true
  | Some dist -> Abe_prob.Dist.mean dist <= t.gamma *. (1. +. tolerance) +. tolerance

let is_abd _t model = Abe_net.Delay_model.is_abd model

let pp ppf t =
  Fmt.pf ppf "ABE(delta=%g, gamma=%g, clock=[%g,%g])" t.delta t.gamma
    t.clock.Abe_net.Clock.s_low t.clock.Abe_net.Clock.s_high
