lib/core/election.mli: Abe_prob Format
