lib/core/announce.ml: Abe_net Array Election Fmt Format List Network Option Params Runner Topology
