lib/core/retransmission.mli: Abe_net Abe_prob
