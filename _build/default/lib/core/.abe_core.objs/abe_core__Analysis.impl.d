lib/core/analysis.ml: Array Election Float
