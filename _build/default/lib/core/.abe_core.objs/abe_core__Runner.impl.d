lib/core/runner.ml: Abe_net Abe_prob Abe_sim Array Delay_model Dist Election Fmt List Network Option Params Rng Topology
