lib/core/runner.mli: Abe_net Abe_prob Abe_sim Election Format Params
