lib/core/params.ml: Abe_net Abe_prob Float Fmt
