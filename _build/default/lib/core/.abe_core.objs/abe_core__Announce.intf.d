lib/core/announce.mli: Abe_sim Format Runner
