lib/core/params.mli: Abe_net Abe_prob Format
