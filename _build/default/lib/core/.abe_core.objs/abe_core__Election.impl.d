lib/core/election.ml: Abe_prob Fmt Format Printf
