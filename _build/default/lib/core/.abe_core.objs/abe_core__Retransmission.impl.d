lib/core/retransmission.ml: Abe_net Abe_prob Abe_sim Analysis Rng Stats
