lib/core/analysis.mli:
