(** ABE network parameters — Definition 1 of the paper.

    An ABE network is an asynchronous network in which three bounds are
    {e known} to the nodes:

    + [delta]: a bound on the {e expected} message delay (the delay itself
      is unbounded);
    + clock-speed bounds [s_low <= s_high] on every local clock;
    + [gamma]: a bound on the expected time to process a local event.

    A {!t} bundles the three; {!admits_delay} / {!admits_processing} check
    that concrete stochastic models respect the declared bounds, which is
    what makes a simulated network an honest ABE network. *)

type t = private {
  delta : float;
  gamma : float;
  clock : Abe_net.Clock.spec;
}

val make : delta:float -> gamma:float -> clock:Abe_net.Clock.spec -> t
(** Validated constructor: [delta > 0], [gamma >= 0]. *)

val default : t
(** [delta = 1], [gamma = 0], perfect clocks — the baseline configuration of
    the experiments. *)

val with_delta : t -> float -> t
val with_gamma : t -> float -> t
val with_clock : t -> Abe_net.Clock.spec -> t

val admits_delay : t -> Abe_net.Delay_model.t -> bool
(** The delay model's expected delay is at most [delta] (up to rounding). *)

val admits_processing : t -> Abe_prob.Dist.t option -> bool
(** The processing-time distribution's mean is at most [gamma]. *)

val is_abd : t -> Abe_net.Delay_model.t -> bool
(** The stricter ABD condition: the delay model has a hard upper bound.
    Every ABD network is an ABE network; not vice versa. *)

val pp : Format.formatter -> t -> unit
