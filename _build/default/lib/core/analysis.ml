let k_avg ~p =
  if not (p > 0. && p <= 1.) then invalid_arg "Analysis.k_avg: p outside (0,1]";
  1. /. p

let retransmission_delay_mean ~p ~slot =
  if not (slot > 0.) then
    invalid_arg "Analysis.retransmission_delay_mean: slot must be positive";
  slot *. k_avg ~p

let activation_probability = Election.activation_probability

let expected_ticks_to_activation ~a0 ~d = 1. /. activation_probability ~a0 ~d

let sum_d ds = Array.fold_left ( + ) 0 ds

let aggregate_activation_probability ~a0 ~ds =
  if not (a0 > 0. && a0 < 1.) then
    invalid_arg "Analysis.aggregate_activation_probability: a0 outside (0,1)";
  1. -. ((1. -. a0) ** float_of_int (sum_d ds))

let aggregate_all_idle ~a0 ~n =
  if not (a0 > 0. && a0 < 1.) then
    invalid_arg "Analysis: a0 outside (0,1)";
  if n < 1 then invalid_arg "Analysis: n must be >= 1";
  1. -. ((1. -. a0) ** float_of_int n)

let activation_mass ~a0 ~n ~delta =
  if not (delta > 0.) then invalid_arg "Analysis.activation_mass: delta must be > 0";
  float_of_int n *. aggregate_all_idle ~a0 ~n *. delta

let recommended_a0 ?(theta = 1.) n =
  if not (theta > 0.) then invalid_arg "Analysis.recommended_a0: theta must be > 0";
  if n < 2 then invalid_arg "Analysis.recommended_a0: n must be >= 2";
  Float.min 0.5 (theta /. float_of_int (n * n))

let expected_ticks_to_first_activation ~a0 ~n =
  1. /. aggregate_all_idle ~a0 ~n

let harmonic n =
  if n < 1 then invalid_arg "Analysis.harmonic: n must be >= 1";
  let rec go acc k =
    if k > n then acc else go (acc +. (1. /. float_of_int k)) (k + 1)
  in
  go 0. 1

let chang_roberts_expected_messages ~n =
  if n < 2 then invalid_arg "Analysis.chang_roberts_expected_messages: n >= 2";
  float_of_int n *. harmonic n

let ir_phase_success_probability ~k ~n =
  if k < 1 then invalid_arg "Analysis.ir_phase_success_probability: k >= 1";
  if n < 1 then invalid_arg "Analysis.ir_phase_success_probability: n >= 1";
  let fn = float_of_int n and fk = float_of_int k in
  let total = ref 0. in
  for v = 1 to n do
    let below = float_of_int (v - 1) /. fn in
    total := !total +. (fk /. fn *. (below ** (fk -. 1.)))
  done;
  !total

let dkr_worst_case_messages ~n =
  if n < 2 then invalid_arg "Analysis.dkr_worst_case_messages: n >= 2";
  let fn = float_of_int n in
  fn *. ((log fn /. log 2.) +. 1.)
