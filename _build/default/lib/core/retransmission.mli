(** The unreliable-channel model of Section 1(iii).

    A physical channel loses or corrupts each transmission independently;
    a transmission succeeds with probability [p].  The sender keeps
    retransmitting until success, so the number of attempts is geometric
    with mean [1/p] and the message delay — while {e unbounded} — has
    expected value [slot/p].  This is the canonical network that is ABE but
    not ABD, and experiment E1 checks the measured means against
    {!Analysis.k_avg}.

    Two implementations are provided:

    - {!simulate_direct} samples the geometric attempt count analytically;
    - {!simulate_arq} drives an explicit stop-and-wait ARQ sender/receiver
      pair through the discrete-event engine (lossy data frames, timeout,
      retransmission), exercising the same machinery the network substrate
      uses.  With [timeout = slot] the two coincide in distribution. *)

type result = {
  attempts : int;  (** transmissions used, >= 1 *)
  delay : float;   (** time from first transmission to successful receipt *)
}

val simulate_direct : rng:Abe_prob.Rng.t -> p:float -> slot:float -> result
(** Sample the model directly: [attempts ~ Geometric(p)],
    [delay = slot * attempts]. *)

val simulate_arq :
  rng:Abe_prob.Rng.t -> p:float -> slot:float -> timeout:float -> result
(** Event-driven stop-and-wait: the sender transmits a frame (propagation
    time [slot], lost with probability [1-p]) and retransmits whenever no
    acknowledgement arrived within [timeout] ([>= slot]; acknowledgements
    are instantaneous and reliable, as in the paper's abstraction). *)

type batch = {
  p : float;
  messages : int;
  attempts : Abe_prob.Stats.summary;
  delay : Abe_prob.Stats.summary;
  predicted_attempts : float;  (** [1/p] *)
  predicted_delay : float;     (** [slot/p] *)
}

val run_batch :
  ?arq:bool -> seed:int -> p:float -> slot:float -> messages:int -> unit -> batch
(** Send [messages] messages and summarise.  [arq = true] uses the
    event-driven path (default [false]). *)

val delay_model : p:float -> slot:float -> Abe_net.Delay_model.t
(** The corresponding per-link delay model, for plugging the lossy channel
    into whole-network experiments. *)
