(** Closed-form quantities from the paper, used as the "paper side" of every
    experiment in EXPERIMENTS.md. *)

val k_avg : p:float -> float
(** Section 1(iii): expected number of transmissions over a lossy channel
    with per-attempt success probability [p]:
    [sum_{k>=0} (k+1) (1-p)^k p = 1/p].  Requires [p] in [(0,1\]]. *)

val retransmission_delay_mean : p:float -> slot:float -> float
(** Expected delay when each attempt takes [slot] time: [slot /. p]. *)

val activation_probability : a0:float -> d:int -> float
(** The election algorithm's wake-up probability, [1 - (1-a0)^d]. *)

val expected_ticks_to_activation : a0:float -> d:int -> float
(** Mean of the geometric waiting time of a single idle node,
    [1 /. activation_probability]. *)

val sum_d : int array -> int
(** [Σ d_i] over the idle nodes — the quantity the adaptive schedule keeps
    close to [n], making the aggregate wake-up rate constant over time. *)

val aggregate_activation_probability : a0:float -> ds:int array -> float
(** Probability that at least one of a set of idle nodes with watermarks
    [ds] activates at a (synchronised) tick:
    [1 - (1-a0)^(Σ d_i)].  With the schedule's invariant [Σ d_i ≈ n] this
    is constant over the execution — the paper's stated design goal. *)

val activation_mass : a0:float -> n:int -> delta:float -> float
(** Expected number of activations during one token circulation of an
    all-idle ring: [n * (1 - (1-a0)^n) * delta] (ticks per circulation ×
    aggregate per-tick wake-up probability).  The election operates in its
    linear regime when this is Θ(1) — see DESIGN.md §4b. *)

val recommended_a0 : ?theta:float -> int -> float
(** [recommended_a0 n] is the constant-activation-mass instantiation
    [θ/n²] (clamped to (0, 0.5]), under which the paper's average linear
    time and message complexity is observed.  [theta] defaults to 1. *)

val expected_ticks_to_first_activation : a0:float -> n:int -> float
(** Mean ticks until the first wake-up of an all-idle ring,
    [1 / (1 - (1-a0)^n)]. *)

val harmonic : int -> float
(** [H_n = Σ_{k=1..n} 1/k].  Baseline prediction: Chang–Roberts has average
    message complexity [n·H_n ≈ n ln n]. *)

val chang_roberts_expected_messages : n:int -> float
(** [n·H_n]: average message count of Chang–Roberts on a ring with random
    identifier ordering. *)

val ir_phase_success_probability : k:int -> n:int -> float
(** Itai–Rodeh: probability that a phase with [k >= 1] contenders drawing
    identifiers uniformly from [{1..n}] produces a unique maximum:
    [Σ_{v=1..n} k (1/n) ((v-1)/n)^(k-1)]. *)

val dkr_worst_case_messages : n:int -> float
(** Dolev–Klawe–Rodeh deterministic bound, [n·log2 n + O(n)] — reported as
    [n·(log2 n + 1)] for shape comparison. *)
