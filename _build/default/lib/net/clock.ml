type spec = {
  s_low : float;
  s_high : float;
}

let spec ~s_low ~s_high =
  if not (s_low > 0. && Float.is_finite s_high && s_high >= s_low) then
    invalid_arg "Clock.spec: requires 0 < s_low <= s_high < infinity";
  { s_low; s_high }

let perfect = { s_low = 1.; s_high = 1. }

let drift_ratio s = s.s_high /. s.s_low

type t = {
  rate : float;
  phase : float;  (* local-time offset at real time 0 *)
}

let create s ~rng =
  let rate =
    if s.s_low = s.s_high then s.s_low
    else Abe_prob.Rng.float_range rng ~lo:s.s_low ~hi:s.s_high
  in
  { rate; phase = Abe_prob.Rng.unit_float rng }

let rate t = t.rate

let local_time t ~real = (t.rate *. real) +. t.phase

let real_of_local t ~local = (local -. t.phase) /. t.rate

let next_tick t ~after =
  let local_now = local_time t ~real:after in
  let candidate = Float.floor local_now +. 1. in
  let real = real_of_local t ~local:candidate in
  (* Guard against rounding collapsing the tick onto [after] itself. *)
  if real > after then real else real_of_local t ~local:(candidate +. 1.)

let tick_interval t = 1. /. t.rate
