open Abe_prob

type t = { dist : Dist.t }

let of_dist dist = Dist.validate dist; { dist }

let abe_exponential ~delta = of_dist (Dist.exponential ~mean:delta)

let abe_retransmission ~success ~slot = of_dist (Dist.retransmission ~success ~slot)

let abd_uniform ~bound = of_dist (Dist.uniform ~lo:0. ~hi:bound)

let abd_deterministic ~delay = of_dist (Dist.deterministic delay)

let dist t = t.dist
let sample t rng = Dist.sample t.dist rng
let expected_delay t = Dist.mean t.dist
let hard_bound t = Dist.support_upper_bound t.dist
let is_abd t = Dist.bounded_support t.dist

let pp ppf t =
  Fmt.pf ppf "%s[%a]" (if is_abd t then "ABD" else "ABE") Dist.pp t.dist
