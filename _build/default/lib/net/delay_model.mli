(** Message-delay models: the knob that separates ABD, ABE and plain
    asynchronous networks.

    - An {b ABD} model has a known {e hard} bound [D] on every delay
      (bounded support).
    - An {b ABE} model (this paper) has a known bound [δ] on the {e expected}
      delay; individual delays may be arbitrarily large.
    - Every model here has finite mean, hence every model is ABE-admissible;
      only bounded-support ones are ABD-admissible. *)

type t

val of_dist : Abe_prob.Dist.t -> t
(** Wrap any delay distribution. *)

val abe_exponential : delta:float -> t
(** Canonical ABE delay: exponential with mean [delta] (unbounded). *)

val abe_retransmission : success:float -> slot:float -> t
(** Section 1(iii): lossy channel with per-attempt success probability;
    expected delay [slot /. success]. *)

val abd_uniform : bound:float -> t
(** Canonical ABD delay: uniform on [\[0, bound\]]. *)

val abd_deterministic : delay:float -> t
val dist : t -> Abe_prob.Dist.t
val sample : t -> Abe_prob.Rng.t -> float
val expected_delay : t -> float
(** The δ of Definition 1.1. *)

val hard_bound : t -> float option
(** The D of an ABD network, when one exists. *)

val is_abd : t -> bool
val pp : Format.formatter -> t -> unit
