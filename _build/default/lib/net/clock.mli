(** Drifting local clocks (Definition 1.2 of the paper).

    Each node owns a local clock [C] whose speed relative to real time is a
    constant rate [r] with [s_low <= r <= s_high]:
    [C(t) = r * t + phase].  This satisfies the paper's condition
    [s_low (t2-t1) <= |C(t2) - C(t1)| <= s_high (t2-t1)] exactly.

    Clock {e ticks} happen at integer local times; the election algorithm
    performs its probabilistic wake-up "at every clock tick". *)

type spec = {
  s_low : float;   (** lower bound on clock speed, > 0 *)
  s_high : float;  (** upper bound on clock speed, >= s_low *)
}

val perfect : spec
(** [s_low = s_high = 1]: all clocks run at real-time speed. *)

val spec : s_low:float -> s_high:float -> spec
(** Validated constructor. *)

val drift_ratio : spec -> float
(** [s_high /. s_low]. *)

type t

val create : spec -> rng:Abe_prob.Rng.t -> t
(** Sample a clock: the rate is uniform in [\[s_low, s_high\]] and the
    initial phase uniform in [\[0, 1)] local units, so ticks of different
    nodes are not aligned. *)

val rate : t -> float

val local_time : t -> real:float -> float
(** Local clock reading at the given real time. *)

val real_of_local : t -> local:float -> float
(** Inverse of {!local_time}. *)

val next_tick : t -> after:float -> float
(** Real time of the first integer local-clock tick strictly after the given
    real time. *)

val tick_interval : t -> float
(** Real-time spacing of local ticks, [1 /. rate]. *)
