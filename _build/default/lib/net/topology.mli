(** Directed network topologies.

    A topology is an immutable directed graph over nodes [0 .. n-1].  Links
    are identified by a dense index so that per-link channel configuration
    (delay distribution, loss) can be stored in arrays.

    The paper's election algorithm runs on the {!ring} (unidirectional);
    the synchroniser experiments additionally use bidirectional rings and
    other standard families. *)

type link = {
  id : int;   (** dense link index, [0 .. link_count-1] *)
  src : int;
  dst : int;
}

type t

val create : nodes:int -> edges:(int * int) list -> t
(** Build a topology from directed edges.  Self-loops and duplicate edges
    are rejected. *)

val node_count : t -> int
val link_count : t -> int

val out_links : t -> int -> link array
(** Outgoing links of a node, ordered by destination insertion order.
    The returned array must not be mutated. *)

val in_links : t -> int -> link array
val link : t -> int -> link
(** Link by dense index. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val links : t -> link array
(** All links ordered by index.  Do not mutate. *)

(** {1 Families} *)

val ring : int -> t
(** Unidirectional ring: node [i] links to [(i+1) mod n].  Requires
    [n >= 2].  Link [i] is the link out of node [i]. *)

val bidirectional_ring : int -> t
val line : int -> t
(** Bidirectional path [0 - 1 - ... - n-1]. *)

val star : int -> t
(** Node 0 is the hub; bidirectional spokes. *)

val complete : int -> t
val grid : rows:int -> cols:int -> t
(** Bidirectional 2-D mesh. *)

val torus : rows:int -> cols:int -> t
val hypercube : dim:int -> t
val random_tree : n:int -> rng:Abe_prob.Rng.t -> t
(** Uniform random attachment tree, bidirectional. *)

val erdos_renyi : n:int -> p:float -> rng:Abe_prob.Rng.t -> t
(** G(n,p) with bidirectional edges; the result may be disconnected —
    check with {!is_connected}. *)

(** {1 Queries} *)

type spanning_tree = {
  root : int;
  parent : int array;    (** [parent.(root) = -1] *)
  children : int array array;
  depth : int array;     (** hop distance from the root *)
}

val bfs_spanning_tree : t -> root:int -> spanning_tree
(** Breadth-first spanning tree over the directed links.
    @raise Invalid_argument if some node is unreachable from [root]. *)


val is_strongly_connected : t -> bool
val is_connected : t -> bool
(** Weak (undirected) connectivity. *)

val hop_distance : t -> src:int -> dst:int -> int option
(** Directed BFS distance in hops. *)

val diameter : t -> int option
(** Maximum directed hop distance; [None] if not strongly connected. *)

val pp : Format.formatter -> t -> unit
