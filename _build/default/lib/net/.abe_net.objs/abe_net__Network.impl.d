lib/net/network.ml: Abe_prob Abe_sim Array Clock Delay_model Dist Engine Float Fmt Format List Option Printf Rng Topology Trace
