lib/net/topology.ml: Abe_prob Array Fmt Hashtbl List Printf Queue
