lib/net/delay_model.mli: Abe_prob Format
