lib/net/clock.ml: Abe_prob Float
