lib/net/clock.mli: Abe_prob
