lib/net/topology.mli: Abe_prob Format
