lib/net/network.mli: Abe_prob Abe_sim Clock Delay_model Format Topology
