lib/net/delay_model.ml: Abe_prob Dist Fmt
