type link = {
  id : int;
  src : int;
  dst : int;
}

type t = {
  nodes : int;
  all_links : link array;
  out_by_node : link array array;
  in_by_node : link array array;
}

let create ~nodes ~edges =
  if nodes <= 0 then invalid_arg "Topology.create: nodes must be positive";
  let seen = Hashtbl.create (List.length edges) in
  let all_links =
    List.mapi
      (fun id (src, dst) ->
         if src < 0 || src >= nodes || dst < 0 || dst >= nodes then
           invalid_arg
             (Printf.sprintf "Topology.create: edge (%d,%d) out of range" src dst);
         if src = dst then
           invalid_arg (Printf.sprintf "Topology.create: self-loop at node %d" src);
         if Hashtbl.mem seen (src, dst) then
           invalid_arg
             (Printf.sprintf "Topology.create: duplicate edge (%d,%d)" src dst);
         Hashtbl.add seen (src, dst) ();
         { id; src; dst })
      edges
    |> Array.of_list
  in
  let collect select =
    let buckets = Array.make nodes [] in
    (* Accumulate in reverse, then reverse per node to preserve order. *)
    Array.iter (fun l -> buckets.(select l) <- l :: buckets.(select l)) all_links;
    Array.map (fun ls -> Array.of_list (List.rev ls)) buckets
  in
  { nodes;
    all_links;
    out_by_node = collect (fun l -> l.src);
    in_by_node = collect (fun l -> l.dst) }

let node_count t = t.nodes
let link_count t = Array.length t.all_links
let out_links t node = t.out_by_node.(node)
let in_links t node = t.in_by_node.(node)
let link t id = t.all_links.(id)
let out_degree t node = Array.length t.out_by_node.(node)
let in_degree t node = Array.length t.in_by_node.(node)
let links t = t.all_links

let ring n =
  if n < 2 then invalid_arg "Topology.ring: needs at least 2 nodes";
  create ~nodes:n ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))

let bidirectional_ring n =
  if n < 2 then invalid_arg "Topology.bidirectional_ring: needs at least 2 nodes";
  let forward = List.init n (fun i -> (i, (i + 1) mod n)) in
  let backward = List.init n (fun i -> ((i + 1) mod n, i)) in
  (* n = 2 would duplicate edges; dedupe through a table. *)
  let edges =
    List.sort_uniq compare (forward @ backward)
  in
  create ~nodes:n ~edges

let both (a, b) = [ (a, b); (b, a) ]

let line n =
  if n < 2 then invalid_arg "Topology.line: needs at least 2 nodes";
  create ~nodes:n
    ~edges:(List.concat_map both (List.init (n - 1) (fun i -> (i, i + 1))))

let star n =
  if n < 2 then invalid_arg "Topology.star: needs at least 2 nodes";
  create ~nodes:n
    ~edges:(List.concat_map both (List.init (n - 1) (fun i -> (0, i + 1))))

let complete n =
  if n < 2 then invalid_arg "Topology.complete: needs at least 2 nodes";
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if i <> j then edges := (i, j) :: !edges
    done
  done;
  create ~nodes:n ~edges:!edges

let grid_edges ~rows ~cols ~wrap =
  if rows <= 0 || cols <= 0 then invalid_arg "Topology.grid: empty grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let add (r', c') =
        if r' >= 0 && r' < rows && c' >= 0 && c' < cols then
          edges := (id r c, id r' c') :: !edges
        else if wrap then
          edges := (id r c, id ((r' + rows) mod rows) ((c' + cols) mod cols)) :: !edges
      in
      add (r + 1, c);
      add (r - 1, c);
      add (r, c + 1);
      add (r, c - 1)
    done
  done;
  List.sort_uniq compare !edges

let grid ~rows ~cols =
  if rows * cols < 2 then invalid_arg "Topology.grid: needs at least 2 nodes";
  create ~nodes:(rows * cols) ~edges:(grid_edges ~rows ~cols ~wrap:false)

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then
    invalid_arg "Topology.torus: needs at least 3 rows and 3 cols";
  create ~nodes:(rows * cols) ~edges:(grid_edges ~rows ~cols ~wrap:true)

let hypercube ~dim =
  if dim < 1 then invalid_arg "Topology.hypercube: dim must be >= 1";
  let n = 1 lsl dim in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for bit = 0 to dim - 1 do
      edges := (v, v lxor (1 lsl bit)) :: !edges
    done
  done;
  create ~nodes:n ~edges:(List.sort_uniq compare !edges)

let random_tree ~n ~rng =
  if n < 2 then invalid_arg "Topology.random_tree: needs at least 2 nodes";
  let edges = ref [] in
  for v = 1 to n - 1 do
    let parent = Abe_prob.Rng.int rng v in
    edges := both (parent, v) @ !edges
  done;
  create ~nodes:n ~edges:!edges

let erdos_renyi ~n ~p ~rng =
  if n < 2 then invalid_arg "Topology.erdos_renyi: needs at least 2 nodes";
  if not (p >= 0. && p <= 1.) then invalid_arg "Topology.erdos_renyi: p outside [0,1]";
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Abe_prob.Rng.bernoulli rng p then edges := both (i, j) @ !edges
    done
  done;
  create ~nodes:n ~edges:!edges

(* BFS over a neighbour function; returns hop distances, -1 = unreachable. *)
let bfs_dist ~n ~neighbours ~src =
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun w ->
         if dist.(w) < 0 then begin
           dist.(w) <- dist.(v) + 1;
           Queue.add w queue
         end)
      (neighbours v)
  done;
  dist

let directed_neighbours t v =
  Array.to_list (Array.map (fun l -> l.dst) t.out_by_node.(v))

let undirected_neighbours t v =
  directed_neighbours t v
  @ Array.to_list (Array.map (fun l -> l.src) t.in_by_node.(v))

type spanning_tree = {
  root : int;
  parent : int array;
  children : int array array;
  depth : int array;
}

let bfs_spanning_tree t ~root =
  if root < 0 || root >= t.nodes then
    invalid_arg "Topology.bfs_spanning_tree: root out of range";
  let parent = Array.make t.nodes (-1) in
  let depth = Array.make t.nodes (-1) in
  let children = Array.make t.nodes [] in
  let queue = Queue.create () in
  depth.(root) <- 0;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun l ->
         let w = l.dst in
         if depth.(w) < 0 then begin
           depth.(w) <- depth.(v) + 1;
           parent.(w) <- v;
           children.(v) <- w :: children.(v);
           Queue.add w queue
         end)
      t.out_by_node.(v)
  done;
  if Array.exists (fun d -> d < 0) depth then
    invalid_arg "Topology.bfs_spanning_tree: not all nodes reachable from root";
  { root;
    parent;
    children = Array.map (fun c -> Array.of_list (List.rev c)) children;
    depth }

let is_strongly_connected t =
  if t.nodes = 1 then true
  else begin
    let forward = bfs_dist ~n:t.nodes ~neighbours:(directed_neighbours t) ~src:0 in
    let reverse_neighbours v =
      Array.to_list (Array.map (fun l -> l.src) t.in_by_node.(v))
    in
    let backward = bfs_dist ~n:t.nodes ~neighbours:reverse_neighbours ~src:0 in
    Array.for_all (fun d -> d >= 0) forward
    && Array.for_all (fun d -> d >= 0) backward
  end

let is_connected t =
  t.nodes = 1
  ||
  let dist = bfs_dist ~n:t.nodes ~neighbours:(undirected_neighbours t) ~src:0 in
  Array.for_all (fun d -> d >= 0) dist

let hop_distance t ~src ~dst =
  let dist = bfs_dist ~n:t.nodes ~neighbours:(directed_neighbours t) ~src in
  if dist.(dst) < 0 then None else Some dist.(dst)

let diameter t =
  let worst = ref 0 in
  let connected = ref true in
  for src = 0 to t.nodes - 1 do
    let dist = bfs_dist ~n:t.nodes ~neighbours:(directed_neighbours t) ~src in
    Array.iter
      (fun d -> if d < 0 then connected := false else if d > !worst then worst := d)
      dist
  done;
  if !connected then Some !worst else None

let pp ppf t =
  Fmt.pf ppf "topology(%d nodes, %d links)" t.nodes (Array.length t.all_links)
