(** Paper-claim vs. measurement records.

    Every experiment ends by registering one or more {!claim} records; the
    bench harness prints them as a closing scoreboard and they are the raw
    material of EXPERIMENTS.md. *)

type verdict = Reproduced | Partially | Failed

type claim = {
  id : string;               (** experiment id, e.g. "E3" *)
  claim : string;            (** the paper's statement *)
  expectation : string;      (** quantitative shape expected *)
  measured : string;         (** what we measured *)
  verdict : verdict;
}

val verdict_of_bool : bool -> verdict
val make :
  id:string -> claim:string -> expectation:string -> measured:string ->
  verdict:verdict -> claim

val register : claim -> unit
(** Append to the global scoreboard (idempotent per id+measured). *)

val all : unit -> claim list
(** Registered claims, in registration order. *)

val reset : unit -> unit
val pp_verdict : Format.formatter -> verdict -> unit
val pp_claim : Format.formatter -> claim -> unit
val print_scoreboard : unit -> unit
