let seeds ~base ~count =
  if count < 1 then invalid_arg "Exp.seeds: count must be >= 1";
  (* Derive well-separated seeds from the base via the generator itself so
     that consecutive bases do not produce overlapping streams. *)
  let rng = Abe_prob.Rng.create ~seed:base in
  List.init count (fun _ ->
      Int64.to_int (Int64.shift_right_logical (Abe_prob.Rng.bits64 rng) 2))

let replicate ~base ~count f =
  List.map (fun seed -> f ~seed) (seeds ~base ~count)

let summarize ~base ~count f =
  let stats = Abe_prob.Stats.create () in
  List.iter
    (fun seed -> Abe_prob.Stats.add stats (f ~seed))
    (seeds ~base ~count);
  Abe_prob.Stats.summary stats

let summarize_until ~base ?(initial = 10) ?(max_count = 1000)
    ~relative_precision f =
  if not (relative_precision > 0.) then
    invalid_arg "Exp.summarize_until: relative_precision must be positive";
  if initial < 2 then invalid_arg "Exp.summarize_until: initial must be >= 2";
  if max_count < initial then
    invalid_arg "Exp.summarize_until: max_count below initial";
  let rng = Abe_prob.Rng.create ~seed:base in
  let next_seed () =
    Int64.to_int (Int64.shift_right_logical (Abe_prob.Rng.bits64 rng) 2)
  in
  let stats = Abe_prob.Stats.create () in
  let rec go spent =
    Abe_prob.Stats.add stats (f ~seed:(next_seed ()));
    let spent = spent + 1 in
    let precise () =
      let mean = Float.abs (Abe_prob.Stats.mean stats) in
      Abe_prob.Stats.ci95_half_width stats <= relative_precision *. mean
    in
    if spent >= max_count || (spent >= initial && precise ()) then
      Abe_prob.Stats.summary stats
    else go spent
  in
  go 0

let sweep params f = List.map (fun p -> (p, f p)) params

let summary_of project results =
  let stats = Abe_prob.Stats.create () in
  List.iter (fun r -> Abe_prob.Stats.add stats (project r)) results;
  Abe_prob.Stats.summary stats

let mean_of project results = (summary_of project results).Abe_prob.Stats.mean

let fraction_of predicate results =
  match results with
  | [] -> invalid_arg "Exp.fraction_of: empty result list"
  | _ ->
    let hits = List.length (List.filter predicate results) in
    float_of_int hits /. float_of_int (List.length results)
