type verdict = Reproduced | Partially | Failed

type claim = {
  id : string;
  claim : string;
  expectation : string;
  measured : string;
  verdict : verdict;
}

let verdict_of_bool ok = if ok then Reproduced else Failed

let make ~id ~claim ~expectation ~measured ~verdict =
  { id; claim; expectation; measured; verdict }

let registry : claim list ref = ref []

let register c =
  if not (List.exists (fun c' -> c'.id = c.id && c'.measured = c.measured) !registry)
  then registry := c :: !registry

let all () = List.rev !registry
let reset () = registry := []

let pp_verdict ppf = function
  | Reproduced -> Format.pp_print_string ppf "REPRODUCED"
  | Partially -> Format.pp_print_string ppf "PARTIAL"
  | Failed -> Format.pp_print_string ppf "FAILED"

let pp_claim ppf c =
  Fmt.pf ppf "[%s] %a@.  claim:    %s@.  expected: %s@.  measured: %s" c.id
    pp_verdict c.verdict c.claim c.expectation c.measured

let print_scoreboard () =
  Fmt.pr "@.== Claim scoreboard ==@.";
  List.iter (fun c -> Fmt.pr "%a@." pp_claim c) (all ());
  let total = List.length (all ()) in
  let reproduced =
    List.length (List.filter (fun c -> c.verdict = Reproduced) (all ()))
  in
  Fmt.pr "@.%d/%d claims reproduced@." reproduced total
