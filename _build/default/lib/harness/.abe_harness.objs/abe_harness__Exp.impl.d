lib/harness/exp.ml: Abe_prob Float Int64 List
