lib/harness/table.ml: Abe_prob Buffer Csv Float Format List Printf String
