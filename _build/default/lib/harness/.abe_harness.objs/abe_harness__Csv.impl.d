lib/harness/csv.ml: Buffer Filename Fun List Printf String Sys
