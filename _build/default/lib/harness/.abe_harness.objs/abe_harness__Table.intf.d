lib/harness/table.mli: Abe_prob Csv Format
