lib/harness/csv.mli:
