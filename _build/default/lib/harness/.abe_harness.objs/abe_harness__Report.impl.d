lib/harness/report.ml: Fmt Format List
