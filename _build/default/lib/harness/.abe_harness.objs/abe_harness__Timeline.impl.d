lib/harness/timeline.ml: Array Buffer Bytes Float List Printf
