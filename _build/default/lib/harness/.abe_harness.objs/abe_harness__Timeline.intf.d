lib/harness/timeline.mli:
