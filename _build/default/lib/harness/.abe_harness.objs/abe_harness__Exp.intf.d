lib/harness/exp.mli: Abe_prob
