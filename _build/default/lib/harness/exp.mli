(** Replication and parameter sweeps.

    Every experiment is a function of a seed; replication runs it on a
    deterministic seed sequence derived from a base seed so that results
    are reproducible and independent across replications. *)

val seeds : base:int -> count:int -> int list
(** [count] distinct derived seeds. *)

val replicate : base:int -> count:int -> (seed:int -> 'a) -> 'a list
(** Run an experiment once per derived seed. *)

val summarize :
  base:int -> count:int -> (seed:int -> float) -> Abe_prob.Stats.summary
(** Replicate a scalar measurement and summarise it. *)

val summarize_until :
  base:int ->
  ?initial:int ->
  ?max_count:int ->
  relative_precision:float ->
  (seed:int -> float) ->
  Abe_prob.Stats.summary
(** Adaptive replication: keep adding replications (starting with
    [initial], default 10) until the 95% confidence half-width falls below
    [relative_precision * |mean|], or [max_count] (default 1000)
    replications have been spent.  Use for measurements whose variance is
    not known in advance. *)

val sweep : 'p list -> ('p -> 'r) -> ('p * 'r) list
(** Evaluate a function over a parameter list, keeping the pairing. *)

val mean_of : ('a -> float) -> 'a list -> float
(** Mean of a projection over replication results. *)

val summary_of : ('a -> float) -> 'a list -> Abe_prob.Stats.summary
(** Summary of a projection over replication results. *)

val fraction_of : ('a -> bool) -> 'a list -> float
(** Fraction of results satisfying a predicate. *)
