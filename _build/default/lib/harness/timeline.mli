(** ASCII execution timelines.

    Renders per-row (typically per-node) state evolution over a time
    interval as fixed-width character strips: each row starts in
    [initial] and changes glyph at every event, e.g.

    {v
    node  0 ........aaaaaaaaaappppppppppppppppp
    node  1 ...............ppppppppppppppppppp
    node  2 .....aaaaaaaaaaaaaaaaaaaaaaaaaaaaL
    v}

    Used by the examples to visualise elections (idle/active/passive/leader
    phases); the renderer itself is generic. *)

type event = {
  time : float;
  row : int;
  glyph : char;  (** the row's state from [time] on *)
}

val render :
  ?width:int ->
  ?labels:(int -> string) ->
  rows:int ->
  duration:float ->
  initial:char ->
  event list ->
  string
(** [render ~rows ~duration ~initial events] lays the events onto
    [width]-column strips (default 72).  Events outside [\[0, duration\]] or
    with an invalid row index are rejected.  Events are sorted internally;
    simultaneous events on the same row keep list order. *)
