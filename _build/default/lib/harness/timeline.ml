type event = {
  time : float;
  row : int;
  glyph : char;
}

let render ?(width = 72) ?labels ~rows ~duration ~initial events =
  if rows <= 0 then invalid_arg "Timeline.render: rows must be positive";
  if width <= 0 then invalid_arg "Timeline.render: width must be positive";
  if not (duration > 0. && Float.is_finite duration) then
    invalid_arg "Timeline.render: duration must be positive and finite";
  List.iter
    (fun e ->
       if e.row < 0 || e.row >= rows then
         invalid_arg (Printf.sprintf "Timeline.render: row %d out of range" e.row);
       if not (e.time >= 0. && e.time <= duration) then
         invalid_arg
           (Printf.sprintf "Timeline.render: time %g outside [0, %g]" e.time
              duration))
    events;
  let strips = Array.init rows (fun _ -> Bytes.make width initial) in
  let column time =
    min (width - 1)
      (int_of_float (float_of_int width *. time /. duration))
  in
  (* Stable sort keeps same-row same-time events in list order, so the last
     one wins — matching the semantics "state from [time] on". *)
  let ordered = List.stable_sort (fun a b -> Float.compare a.time b.time) events in
  List.iter
    (fun e ->
       let strip = strips.(e.row) in
       for col = column e.time to width - 1 do
         Bytes.set strip col e.glyph
       done)
    ordered;
  let label =
    match labels with
    | Some f -> f
    | None -> Printf.sprintf "row %3d"
  in
  let buffer = Buffer.create (rows * (width + 16)) in
  Array.iteri
    (fun row strip ->
       Buffer.add_string buffer (label row);
       Buffer.add_char buffer ' ';
       Buffer.add_bytes buffer strip;
       Buffer.add_char buffer '\n')
    strips;
  Buffer.contents buffer
