type t = {
  columns : string list;
  mutable rows : string list list;  (* newest first *)
}

let create ~columns =
  if columns = [] then invalid_arg "Csv.create: no columns";
  { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Csv.add_row: expected %d fields, got %d"
         (List.length t.columns) (List.length row));
  t.rows <- row :: t.rows

let row_count t = List.length t.rows

let field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let buffer = Buffer.create (String.length s + 8) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
         if c = '"' then Buffer.add_string buffer "\"\""
         else Buffer.add_char buffer c)
      s;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end

let to_string t =
  let line row = String.concat "," (List.map field row) in
  String.concat "\n" (line t.columns :: List.rev_map line t.rows) ^ "\n"

let rec make_directories path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    make_directories (Filename.dirname path);
    Sys.mkdir path 0o755
  end

let save t ~path =
  make_directories (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
