test/test_analysis.ml: Abe_core Abe_prob Alcotest Analysis Array Float
