test/test_topology.ml: Abe_net Abe_prob Alcotest Array Fun List Printf QCheck QCheck_alcotest Topology
