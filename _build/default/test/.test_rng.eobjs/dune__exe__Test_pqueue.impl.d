test/test_pqueue.ml: Abe_sim Alcotest Float List Pqueue QCheck QCheck_alcotest
