test/test_sync_ring.ml: Abe_election Abe_prob Alcotest Array Chang_roberts Fmt Format Itai_rodeh List Printf Sync_ring
