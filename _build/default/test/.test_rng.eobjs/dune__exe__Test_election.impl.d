test/test_election.ml: Abe_core Abe_prob Alcotest Election Float Fmt List QCheck QCheck_alcotest
