test/test_fit.ml: Abe_prob Alcotest Array Fit Float List QCheck QCheck_alcotest Rng
