test/test_baselines.ml: Abe_core Abe_election Abe_net Abe_prob Alcotest Array Async_baselines Chang_roberts Dolev_klawe_rodeh Float Itai_rodeh List Printf QCheck QCheck_alcotest
