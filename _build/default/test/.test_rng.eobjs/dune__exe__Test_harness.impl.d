test/test_harness.ml: Abe_harness Abe_prob Alcotest Csv Exp Filename Float Fun List QCheck QCheck_alcotest Report String Sys Table Timeline
