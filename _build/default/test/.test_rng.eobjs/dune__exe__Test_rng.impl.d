test/test_rng.ml: Abe_prob Alcotest Array Float Fun List QCheck QCheck_alcotest Rng Stats
