test/test_dist.ml: Abe_prob Alcotest Array Dist Float Fun Hashtbl Ks List Option QCheck QCheck_alcotest Rng Stats String
