test/test_retransmission.ml: Abe_core Abe_net Abe_prob Alcotest Float List QCheck QCheck_alcotest Retransmission
