test/test_trace.ml: Abe_sim Alcotest Fmt List String Trace
