test/test_engine.ml: Abe_sim Alcotest Engine Float Fun List QCheck QCheck_alcotest
