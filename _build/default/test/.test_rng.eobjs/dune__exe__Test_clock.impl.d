test/test_clock.ml: Abe_net Abe_prob Alcotest Clock Float List QCheck QCheck_alcotest
