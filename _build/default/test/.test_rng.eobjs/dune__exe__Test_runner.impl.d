test/test_runner.ml: Abe_core Abe_net Abe_prob Abe_sim Alcotest Announce Array Float List Params Printf QCheck QCheck_alcotest Runner
