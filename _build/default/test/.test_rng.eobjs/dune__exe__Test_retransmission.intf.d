test/test_retransmission.mli:
