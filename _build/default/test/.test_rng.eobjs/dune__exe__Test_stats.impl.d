test/test_stats.ml: Abe_prob Alcotest Array Float Fmt List QCheck QCheck_alcotest Rng Stats String
