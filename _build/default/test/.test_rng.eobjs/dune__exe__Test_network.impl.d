test/test_network.ml: Abe_net Abe_prob Abe_sim Alcotest Array Clock Delay_model Float Fmt Format List Network QCheck QCheck_alcotest Topology
