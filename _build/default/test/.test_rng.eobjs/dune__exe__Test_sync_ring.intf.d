test/test_sync_ring.mli:
