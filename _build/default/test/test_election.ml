open Abe_core

let state phase d = { Election.phase; d }

let check_state msg expected actual =
  if expected <> actual then
    Alcotest.failf "%s: expected %s, got %s" msg
      (Fmt.str "%a" Election.pp_state expected)
      (Fmt.str "%a" Election.pp_state actual)

let test_initial () =
  check_state "initial" (state Election.Idle 1) Election.initial

let test_activation_probability_formula () =
  Alcotest.(check (float 1e-12)) "d=1 equals a0" 0.3
    (Election.activation_probability ~a0:0.3 ~d:1);
  Alcotest.(check (float 1e-12)) "d=2" (1. -. (0.7 *. 0.7))
    (Election.activation_probability ~a0:0.3 ~d:2);
  Alcotest.(check bool) "d large approaches 1" true
    (Election.activation_probability ~a0:0.3 ~d:100 > 0.999)

let test_activation_probability_monotone () =
  let previous = ref 0. in
  for d = 1 to 50 do
    let p = Election.activation_probability ~a0:0.2 ~d in
    if p <= !previous then Alcotest.failf "not monotone at d=%d" d;
    previous := p
  done

let test_activation_probability_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "a0=0" (fun () ->
      Election.activation_probability ~a0:0. ~d:1);
  expect_invalid "a0=1" (fun () ->
      Election.activation_probability ~a0:1. ~d:1);
  expect_invalid "d=0" (fun () ->
      Election.activation_probability ~a0:0.5 ~d:0)

let test_tick_only_idle_activates () =
  let rng = Abe_prob.Rng.create ~seed:1 in
  List.iter
    (fun phase ->
       let st, sent =
         Election.tick_decision ~a0:0.99 ~rng (state phase 5)
       in
       check_state "unchanged" (state phase 5) st;
       Alcotest.(check bool) "no send" false sent)
    [ Election.Active; Election.Passive; Election.Leader ]

let test_tick_idle_activation_rate () =
  let rng = Abe_prob.Rng.create ~seed:2 in
  let activations = ref 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    let st, sent = Election.tick_decision ~a0:0.2 ~rng (state Election.Idle 2) in
    if sent then begin
      incr activations;
      check_state "became active" (state Election.Active 2) st
    end
    else check_state "stays idle" (state Election.Idle 2) st
  done;
  let rate = float_of_int !activations /. float_of_int trials in
  let expected = Election.activation_probability ~a0:0.2 ~d:2 in
  Alcotest.(check bool) "rate matches formula" true
    (Float.abs (rate -. expected) < 0.005)

let test_receive_idle_becomes_passive () =
  let st, reaction = Election.receive ~n:8 (state Election.Idle 1) 3 in
  check_state "passive with watermark" (state Election.Passive 3) st;
  Alcotest.(check bool) "forwards d+1" true (reaction = Election.Forward 4)

let test_receive_passive_forwards () =
  let st, reaction = Election.receive ~n:8 (state Election.Passive 5) 2 in
  check_state "keeps watermark" (state Election.Passive 5) st;
  (* d = max(5, 2) = 5, forwards 6: a knockout message accelerates. *)
  Alcotest.(check bool) "forwards watermark+1" true
    (reaction = Election.Forward 6)

let test_receive_active_purges () =
  let st, reaction = Election.receive ~n:8 (state Election.Active 1) 4 in
  check_state "demoted to idle" (state Election.Idle 4) st;
  Alcotest.(check bool) "purged" true (reaction = Election.Purge)

let test_receive_active_elected () =
  let st, reaction = Election.receive ~n:8 (state Election.Active 3) 8 in
  check_state "leader" (state Election.Leader 8) st;
  Alcotest.(check bool) "elected" true (reaction = Election.Elected)

let test_receive_leader_defensive () =
  let st, reaction = Election.receive ~n:8 (state Election.Leader 8) 2 in
  Alcotest.(check bool) "leader unchanged" true
    (st.Election.phase = Election.Leader);
  Alcotest.(check bool) "purged" true (reaction = Election.Purge)

let test_receive_watermark_update () =
  let st, _ = Election.receive ~n:10 (state Election.Idle 4) 7 in
  Alcotest.(check int) "d raised" 7 st.Election.d;
  let st2, _ = Election.receive ~n:10 (state Election.Passive 7) 2 in
  Alcotest.(check int) "d kept" 7 st2.Election.d

let test_receive_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "hop 0" (fun () -> Election.receive ~n:5 Election.initial 0);
  expect_invalid "hop > n" (fun () -> Election.receive ~n:5 Election.initial 6);
  expect_invalid "n < 2" (fun () -> Election.receive ~n:1 Election.initial 1)

(* Property: receive never lowers d, never forwards beyond n when fed
   hops consistent with the reachable-state invariant (d <= hop bound). *)
let prop_receive_monotone_d =
  QCheck.Test.make ~name:"receive never lowers the watermark" ~count:500
    QCheck.(triple (int_range 2 64) (int_range 1 64) (int_range 1 64))
    (fun (n, d, hop) ->
       QCheck.assume (hop <= n && d <= n);
       let st = state Election.Passive d in
       let st', _ = Election.receive ~n st hop in
       st'.Election.d >= d && st'.Election.d >= hop)

let prop_forward_hop_bounded =
  QCheck.Test.make ~name:"forwarded hop is watermark+1" ~count:500
    QCheck.(triple (int_range 2 64) (int_range 1 64) (int_range 1 64))
    (fun (n, d, hop) ->
       QCheck.assume (hop <= n && d <= n);
       let st = state Election.Idle d in
       let st', reaction = Election.receive ~n st hop in
       match reaction with
       | Election.Forward h -> h = st'.Election.d + 1
       | Election.Purge | Election.Elected -> false)

let prop_active_hop_n_elects =
  QCheck.Test.make ~name:"active + hop=n always elects" ~count:200
    QCheck.(pair (int_range 2 64) (int_range 1 64))
    (fun (n, d) ->
       QCheck.assume (d <= n);
       let st = state Election.Active d in
       let _, reaction = Election.receive ~n st n in
       reaction = Election.Elected)

let () =
  Alcotest.run "election"
    [ ( "activation",
        [ Alcotest.test_case "initial state" `Quick test_initial;
          Alcotest.test_case "probability formula" `Quick
            test_activation_probability_formula;
          Alcotest.test_case "monotone in d" `Quick
            test_activation_probability_monotone;
          Alcotest.test_case "validation" `Quick
            test_activation_probability_validation;
          Alcotest.test_case "only idle activates" `Quick
            test_tick_only_idle_activates;
          Alcotest.test_case "activation rate" `Quick
            test_tick_idle_activation_rate ] );
      ( "receive",
        [ Alcotest.test_case "idle -> passive" `Quick
            test_receive_idle_becomes_passive;
          Alcotest.test_case "passive forwards" `Quick
            test_receive_passive_forwards;
          Alcotest.test_case "active purges" `Quick test_receive_active_purges;
          Alcotest.test_case "active elected" `Quick test_receive_active_elected;
          Alcotest.test_case "leader defensive" `Quick
            test_receive_leader_defensive;
          Alcotest.test_case "watermark update" `Quick
            test_receive_watermark_update;
          Alcotest.test_case "validation" `Quick test_receive_validation ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_receive_monotone_d;
            prop_forward_hop_bounded;
            prop_active_hop_n_elects ] ) ]
