open Abe_election

let test_itai_rodeh_elects () =
  for seed = 1 to 40 do
    let o = Itai_rodeh.run ~seed ~n:8 () in
    if not o.Itai_rodeh.elected then Alcotest.failf "seed %d: no leader" seed;
    if o.Itai_rodeh.leader_count <> 1 then
      Alcotest.failf "seed %d: %d leaders" seed o.Itai_rodeh.leader_count
  done

let test_itai_rodeh_sizes () =
  List.iter
    (fun n ->
       let o = Itai_rodeh.run ~seed:(50 + n) ~n () in
       Alcotest.(check bool) (Printf.sprintf "n=%d" n) true o.Itai_rodeh.elected;
       Alcotest.(check bool) "phases >= 1" true (o.Itai_rodeh.phases >= 1);
       Alcotest.(check bool) "rounds >= n" true (o.Itai_rodeh.rounds >= n))
    [ 2; 3; 4; 7; 16; 33; 64 ]

let test_itai_rodeh_message_scale () =
  (* Messages per election should be a small multiple of n. *)
  let n = 32 in
  let total = ref 0 in
  let reps = 20 in
  for seed = 1 to reps do
    let o = Itai_rodeh.run ~seed ~n () in
    total := !total + o.Itai_rodeh.messages
  done;
  let mean = float_of_int !total /. float_of_int reps in
  Alcotest.(check bool) "at least n" true (mean >= float_of_int n);
  Alcotest.(check bool) "at most ~8n on average" true
    (mean <= 8. *. float_of_int n)

let test_itai_rodeh_deterministic () =
  let a = Itai_rodeh.run ~seed:9 ~n:16 () in
  let b = Itai_rodeh.run ~seed:9 ~n:16 () in
  Alcotest.(check int) "same messages" a.Itai_rodeh.messages b.Itai_rodeh.messages;
  Alcotest.(check int) "same rounds" a.Itai_rodeh.rounds b.Itai_rodeh.rounds

let test_chang_roberts_elects () =
  for seed = 1 to 40 do
    let o = Chang_roberts.run ~seed ~n:8 () in
    if not o.Chang_roberts.elected then Alcotest.failf "seed %d: no leader" seed;
    if o.Chang_roberts.leader_count <> 1 then
      Alcotest.failf "seed %d: %d leaders" seed o.Chang_roberts.leader_count
  done

let test_chang_roberts_message_bounds () =
  (* Between n (all ids decreasing along the ring... minimum n for the
     winner's full lap plus at least 1 per other initiator) and n(n+1)/2. *)
  for seed = 1 to 30 do
    let n = 16 in
    let o = Chang_roberts.run ~seed ~n () in
    if o.Chang_roberts.messages < n then
      Alcotest.failf "fewer than n messages: %d" o.Chang_roberts.messages;
    if o.Chang_roberts.messages > n * (n + 1) / 2 then
      Alcotest.failf "above worst case: %d" o.Chang_roberts.messages
  done

let test_chang_roberts_average_near_nhn () =
  let n = 64 in
  let reps = 60 in
  let total = ref 0 in
  for seed = 1 to reps do
    let o = Chang_roberts.run ~seed ~n () in
    total := !total + o.Chang_roberts.messages
  done;
  let mean = float_of_int !total /. float_of_int reps in
  let predicted = Abe_core.Analysis.chang_roberts_expected_messages ~n in
  (* n·H_n = 303 for n=64; allow 15% statistical slack. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean %.0f near %.0f" mean predicted)
    true
    (Float.abs (mean -. predicted) /. predicted < 0.15)

let test_chang_roberts_rounds () =
  (* The winner's id travels the full ring: at least n rounds. *)
  let o = Chang_roberts.run ~seed:3 ~n:12 () in
  Alcotest.(check bool) "rounds >= n" true (o.Chang_roberts.rounds >= 12)

let test_dkr_elects () =
  for seed = 1 to 40 do
    let o = Dolev_klawe_rodeh.run ~seed ~n:8 () in
    if not o.Dolev_klawe_rodeh.elected then
      Alcotest.failf "seed %d: no leader" seed;
    if o.Dolev_klawe_rodeh.leader_count <> 1 then
      Alcotest.failf "seed %d: %d leaders" seed o.Dolev_klawe_rodeh.leader_count
  done

let test_dkr_sizes () =
  List.iter
    (fun n ->
       let o = Dolev_klawe_rodeh.run ~seed:(70 + n) ~n () in
       Alcotest.(check bool) (Printf.sprintf "n=%d" n) true
         o.Dolev_klawe_rodeh.elected)
    [ 2; 3; 5; 9; 17; 32; 65 ]

let test_dkr_message_bound () =
  (* Deterministic bound: phases <= ceil(log2 n) + 1, each phase at most 2n
     messages, plus the final lap. *)
  for seed = 1 to 20 do
    let n = 32 in
    let o = Dolev_klawe_rodeh.run ~seed ~n () in
    let log2n = int_of_float (Float.ceil (log (float_of_int n) /. log 2.)) in
    let bound = (2 * n * (log2n + 1)) + n in
    if o.Dolev_klawe_rodeh.messages > bound then
      Alcotest.failf "messages %d exceed bound %d" o.Dolev_klawe_rodeh.messages
        bound;
    if o.Dolev_klawe_rodeh.phases > log2n + 1 then
      Alcotest.failf "phases %d exceed log bound" o.Dolev_klawe_rodeh.phases
  done

let test_dkr_leader_holds_max () =
  (* DKR elects the node that ends up holding the maximum value; with ids
     1..n the winning value is n.  The leader must be unique. *)
  let o = Dolev_klawe_rodeh.run ~seed:5 ~n:16 () in
  Alcotest.(check int) "one leader" 1 o.Dolev_klawe_rodeh.leader_count

let test_growth_shapes () =
  (* The headline comparison (E8): CR and DKR grow like n log n; the ring
     sizes here are small but the classifier already separates shapes. *)
  let sizes = [ 8; 16; 32; 64; 128 ] in
  let mean f =
    let reps = 15 in
    fun n ->
      let total = ref 0 in
      for seed = 1 to reps do
        total := !total + f ~seed ~n
      done;
      float_of_int !total /. float_of_int reps
  in
  let cr_points =
    List.map
      (fun n ->
         (float_of_int n,
          mean (fun ~seed ~n -> (Chang_roberts.run ~seed ~n ()).Chang_roberts.messages) n))
      sizes
  in
  let growth = Abe_prob.Fit.classify_growth (Array.of_list cr_points) in
  Alcotest.(check bool) "CR grows like n log n (or close)" true
    (growth = Abe_prob.Fit.Linearithmic || growth = Abe_prob.Fit.Linear)

let test_async_cr_elects () =
  for seed = 1 to 20 do
    let o = Async_baselines.chang_roberts ~seed ~n:12 () in
    if not o.Async_baselines.elected then Alcotest.failf "seed %d: no leader" seed;
    if o.Async_baselines.leader_count <> 1 then
      Alcotest.failf "seed %d: %d leaders" seed o.Async_baselines.leader_count
  done

let test_async_cr_message_complexity_model_independent () =
  (* Chang-Roberts counts messages identically on the synchronous ring and
     the ABE network (averaged over identifier orderings): its logic is
     timing-oblivious.  Compare the two means. *)
  let n = 32 in
  let reps = 40 in
  let mean f =
    let total = ref 0 in
    for seed = 1 to reps do
      total := !total + f seed
    done;
    float_of_int !total /. float_of_int reps
  in
  let sync_mean =
    mean (fun seed -> (Chang_roberts.run ~seed ~n ()).Chang_roberts.messages)
  in
  let async_mean =
    mean (fun seed ->
        (Async_baselines.chang_roberts ~seed ~n ()).Async_baselines.messages)
  in
  Alcotest.(check bool)
    (Printf.sprintf "sync %.0f vs async %.0f within 15%%" sync_mean async_mean)
    true
    (Float.abs (sync_mean -. async_mean) /. sync_mean < 0.15)

let test_async_ir_elects_with_fifo () =
  for seed = 1 to 20 do
    let o = Async_baselines.itai_rodeh ~seed ~n:12 () in
    if not o.Async_baselines.elected then Alcotest.failf "seed %d: no leader" seed;
    if o.Async_baselines.leader_count <> 1 then
      Alcotest.failf "seed %d: %d leaders" seed o.Async_baselines.leader_count
  done

let test_async_on_heavy_tail_delays () =
  let delay =
    Abe_net.Delay_model.of_dist (Abe_prob.Dist.lomax ~alpha:2.5 ~mean:1.)
  in
  let cr = Async_baselines.chang_roberts ~delay ~seed:3 ~n:10 () in
  let ir = Async_baselines.itai_rodeh ~delay ~seed:3 ~n:10 () in
  Alcotest.(check bool) "cr elects" true cr.Async_baselines.elected;
  Alcotest.(check bool) "ir elects" true ir.Async_baselines.elected

let prop_ir_unique_leader =
  QCheck.Test.make ~name:"Itai-Rodeh never elects two leaders" ~count:60
    QCheck.(pair (int_range 2 24) small_int)
    (fun (n, seed) ->
       let o = Itai_rodeh.run ~seed ~n () in
       o.Itai_rodeh.leader_count <= 1)

let prop_cr_leader_position =
  QCheck.Test.make ~name:"Chang-Roberts elects exactly one node" ~count:60
    QCheck.(pair (int_range 2 24) small_int)
    (fun (n, seed) ->
       let o = Chang_roberts.run ~seed ~n () in
       o.Chang_roberts.elected && o.Chang_roberts.leader_count = 1)

let prop_dkr_unique =
  QCheck.Test.make ~name:"DKR elects exactly one node" ~count:60
    QCheck.(pair (int_range 2 24) small_int)
    (fun (n, seed) ->
       let o = Dolev_klawe_rodeh.run ~seed ~n () in
       o.Dolev_klawe_rodeh.elected && o.Dolev_klawe_rodeh.leader_count = 1)

let () =
  Alcotest.run "baselines"
    [ ( "itai-rodeh",
        [ Alcotest.test_case "elects" `Quick test_itai_rodeh_elects;
          Alcotest.test_case "sizes" `Quick test_itai_rodeh_sizes;
          Alcotest.test_case "message scale" `Quick test_itai_rodeh_message_scale;
          Alcotest.test_case "deterministic" `Quick test_itai_rodeh_deterministic ]
      );
      ( "chang-roberts",
        [ Alcotest.test_case "elects" `Quick test_chang_roberts_elects;
          Alcotest.test_case "message bounds" `Quick
            test_chang_roberts_message_bounds;
          Alcotest.test_case "average n·H_n" `Slow
            test_chang_roberts_average_near_nhn;
          Alcotest.test_case "rounds" `Quick test_chang_roberts_rounds ] );
      ( "dolev-klawe-rodeh",
        [ Alcotest.test_case "elects" `Quick test_dkr_elects;
          Alcotest.test_case "sizes" `Quick test_dkr_sizes;
          Alcotest.test_case "message bound" `Quick test_dkr_message_bound;
          Alcotest.test_case "unique leader" `Quick test_dkr_leader_holds_max ] );
      ("growth", [ Alcotest.test_case "shapes" `Slow test_growth_shapes ]);
      ( "async-adapters",
        [ Alcotest.test_case "CR on ABE" `Quick test_async_cr_elects;
          Alcotest.test_case "CR model-independent messages" `Slow
            test_async_cr_message_complexity_model_independent;
          Alcotest.test_case "IR on ABE with FIFO" `Quick
            test_async_ir_elects_with_fifo;
          Alcotest.test_case "heavy-tail delays" `Quick
            test_async_on_heavy_tail_delays ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_ir_unique_leader; prop_cr_leader_position; prop_dkr_unique ] ) ]
