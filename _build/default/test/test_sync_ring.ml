open Abe_election

(* A relay protocol: node 0 injects a counter that hops around the ring,
   incremented at each node, until it reaches a target. *)
module Counter = struct
  type state = int list  (* values seen, newest first *)
  type message = int

  let pp_state ppf s = Fmt.pf ppf "seen=%d" (List.length s)
  let pp_message = Format.pp_print_int
end

module Ring = Sync_ring.Make (Counter)

let relay_handlers ~target : Ring.handlers =
  { init =
      (fun ctx ->
         if ctx.Ring.node = 0 then ctx.Ring.send 0;
         []);
    on_round =
      (fun ctx seen incoming ->
         List.fold_left
           (fun seen v ->
              if v + 1 >= target then ctx.Ring.stop ()
              else ctx.Ring.send (v + 1);
              v :: seen)
           seen incoming) }

let test_relay_advances_one_hop_per_round () =
  let ring = Ring.create ~seed:1 ~n:5 (relay_handlers ~target:12) in
  let outcome = Ring.run ring in
  (match outcome with
   | Ring.Stopped rounds ->
     (* The counter reaches 11 after 12 hops = 12 rounds. *)
     Alcotest.(check int) "rounds = hops" 12 rounds
   | Ring.Quiescent _ | Ring.Round_limit -> Alcotest.fail "expected stop");
  Alcotest.(check int) "one message per round" 12 (Ring.messages_sent ring);
  (* The counter visits nodes 1,2,3,4,0,1,... — each value lands on ring
     position (v+1) mod 5. *)
  Array.iteri
    (fun node seen ->
       List.iter
         (fun v ->
            Alcotest.(check int)
              (Printf.sprintf "value %d at node %d" v node)
              ((v + 1) mod 5) node)
         seen)
    (Ring.states ring)

let test_quiescence_detected () =
  let handlers : Ring.handlers =
    { init = (fun _ -> []);
      on_round = (fun _ st _ -> st) }
  in
  let ring = Ring.create ~seed:1 ~n:4 handlers in
  match Ring.run ring with
  | Ring.Quiescent 0 -> ()
  | _ -> Alcotest.fail "expected immediate quiescence"

let test_round_limit () =
  (* A perpetual token never quiesces: the round limit must fire. *)
  let handlers : Ring.handlers =
    { init = (fun ctx -> if ctx.Ring.node = 0 then ctx.Ring.send 0; []);
      on_round =
        (fun ctx st incoming ->
           List.iter (fun v -> ctx.Ring.send v) incoming;
           st) }
  in
  let ring = Ring.create ~seed:1 ~n:3 handlers in
  match Ring.run ~max_rounds:50 ring with
  | Ring.Round_limit -> Alcotest.(check int) "ran 50 rounds" 50 (Ring.round ring)
  | _ -> Alcotest.fail "expected round limit"

let test_messages_per_round_log () =
  let ring = Ring.create ~seed:1 ~n:4 (relay_handlers ~target:5) in
  ignore (Ring.run ring);
  let log = Ring.messages_per_round ring in
  (* One message per round, except the final round where the handler stops
     without relaying. *)
  Alcotest.(check bool) "at most one message per round" true
    (List.for_all (fun c -> c <= 1) log);
  Alcotest.(check int) "log sums to the total" (Ring.messages_sent ring)
    (List.fold_left ( + ) 0 log)

let test_multiple_messages_same_round () =
  (* A node may send several messages in one round; they are delivered
     together, in sending order. *)
  let handlers : Ring.handlers =
    { init =
        (fun ctx ->
           if ctx.Ring.node = 0 then List.iter ctx.Ring.send [ 1; 2; 3 ];
           []);
      on_round =
        (fun ctx st incoming ->
           if incoming <> [] then ctx.Ring.stop ();
           incoming @ st) }
  in
  let ring = Ring.create ~seed:1 ~n:3 handlers in
  ignore (Ring.run ring);
  Alcotest.(check (list int)) "delivered in sending order" [ 1; 2; 3 ]
    (Ring.state ring 1)

let test_rng_is_per_node () =
  let draws = Array.make 4 0 in
  let handlers : Ring.handlers =
    { init =
        (fun ctx ->
           draws.(ctx.Ring.node) <- Abe_prob.Rng.int ctx.Ring.rng 1_000_000;
           []);
      on_round = (fun _ st _ -> st) }
  in
  ignore (Ring.run (Ring.create ~seed:5 ~n:4 handlers));
  let distinct = List.sort_uniq compare (Array.to_list draws) in
  Alcotest.(check int) "independent node streams" 4 (List.length distinct)

(* Pure-transition unit tests for the baseline cores. *)

let test_cr_transition () =
  let open Chang_roberts in
  (match transition (Contending { id = 5 }) 5 with
   | Leader { id = 5 }, Win -> ()
   | _ -> Alcotest.fail "own id should win");
  (match transition (Contending { id = 5 }) 9 with
   | Relaying { id = 5 }, Forward -> ()
   | _ -> Alcotest.fail "bigger id should beat");
  (match transition (Contending { id = 5 }) 3 with
   | Contending { id = 5 }, Drop -> ()
   | _ -> Alcotest.fail "smaller id should be dropped");
  (match transition (Relaying { id = 5 }) 9 with
   | Relaying _, Forward -> ()
   | _ -> Alcotest.fail "relays forward bigger ids");
  match transition (Leader { id = 5 }) 9 with
  | Leader _, Drop -> ()
  | _ -> Alcotest.fail "leader drops everything"

let test_ir_transition () =
  let open Itai_rodeh in
  let fresh_id () = 7 in
  let n = 6 in
  (* Own unbeaten token returns: leader. *)
  (match
     transition ~n ~fresh_id
       (Active { phase = 2; id = 3 })
       { phase = 2; id = 3; hop = n; bit = true }
   with
   | Leader { phase = 2 }, Won -> ()
   | _ -> Alcotest.fail "expected win");
  (* Own token returns flagged: next phase with a fresh identifier. *)
  (match
     transition ~n ~fresh_id
       (Active { phase = 2; id = 3 })
       { phase = 2; id = 3; hop = n; bit = false }
   with
   | Active { phase = 3; id = 7 }, Launch { phase = 3; id = 7; hop = 1; bit = true }
     -> ()
   | _ -> Alcotest.fail "expected next phase");
  (* Tie with another active node, mid-ring: flag and relay. *)
  (match
     transition ~n ~fresh_id
       (Active { phase = 2; id = 3 })
       { phase = 2; id = 3; hop = 2; bit = true }
   with
   | Active _, Relay { bit = false; hop = 3; _ } -> ()
   | _ -> Alcotest.fail "expected flagged relay");
  (* Beaten by a lexicographically larger token. *)
  (match
     transition ~n ~fresh_id
       (Active { phase = 2; id = 3 })
       { phase = 2; id = 5; hop = 1; bit = true }
   with
   | Passive, Relay { hop = 2; _ } -> ()
   | _ -> Alcotest.fail "expected knock-out");
  (* Stale token purged. *)
  match
    transition ~n ~fresh_id
      (Active { phase = 2; id = 3 })
      { phase = 1; id = 5; hop = 1; bit = true }
  with
  | Active _, Discard -> ()
  | _ -> Alcotest.fail "expected purge"

let () =
  Alcotest.run "sync_ring"
    [ ( "engine",
        [ Alcotest.test_case "relay timing" `Quick
            test_relay_advances_one_hop_per_round;
          Alcotest.test_case "quiescence" `Quick test_quiescence_detected;
          Alcotest.test_case "round limit" `Quick test_round_limit;
          Alcotest.test_case "per-round log" `Quick test_messages_per_round_log;
          Alcotest.test_case "batched sends" `Quick
            test_multiple_messages_same_round;
          Alcotest.test_case "per-node rng" `Quick test_rng_is_per_node ] );
      ( "pure transitions",
        [ Alcotest.test_case "chang-roberts" `Quick test_cr_transition;
          Alcotest.test_case "itai-rodeh" `Quick test_ir_transition ] ) ]
