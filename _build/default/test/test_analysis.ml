open Abe_core

let test_k_avg () =
  Alcotest.(check (float 1e-12)) "p=1" 1. (Analysis.k_avg ~p:1.);
  Alcotest.(check (float 1e-12)) "p=0.5" 2. (Analysis.k_avg ~p:0.5);
  Alcotest.(check (float 1e-12)) "p=0.1" 10. (Analysis.k_avg ~p:0.1)

let test_k_avg_matches_series () =
  (* k_avg = sum_{k>=0} (k+1)(1-p)^k p, the series in the paper. *)
  let p = 0.3 in
  let series = ref 0. in
  for k = 0 to 1000 do
    series := !series +. (float_of_int (k + 1) *. ((1. -. p) ** float_of_int k) *. p)
  done;
  Alcotest.(check (float 1e-6)) "series sums to 1/p" (Analysis.k_avg ~p) !series

let test_retransmission_delay () =
  Alcotest.(check (float 1e-12)) "slot scales" 8.
    (Analysis.retransmission_delay_mean ~p:0.25 ~slot:2.)

let test_expected_ticks () =
  Alcotest.(check (float 1e-9)) "reciprocal" (1. /. 0.3)
    (Analysis.expected_ticks_to_activation ~a0:0.3 ~d:1)

let test_sum_d () =
  Alcotest.(check int) "sum" 10 (Analysis.sum_d [| 1; 2; 3; 4 |]);
  Alcotest.(check int) "empty" 0 (Analysis.sum_d [||])

let test_aggregate_activation () =
  (* With sum d = n the aggregate equals the initial all-idle value:
     the paper's invariant. *)
  let a0 = 0.2 in
  let initial = Analysis.aggregate_activation_probability ~a0 ~ds:(Array.make 8 1) in
  let late = Analysis.aggregate_activation_probability ~a0 ~ds:[| 5; 3 |] in
  Alcotest.(check (float 1e-12)) "invariant" initial late;
  Alcotest.(check (float 1e-12)) "closed form" (1. -. (0.8 ** 8.)) initial

let test_activation_mass () =
  (* Small a0: mass ~ a0 n^2 delta. *)
  let mass = Analysis.activation_mass ~a0:1e-6 ~n:100 ~delta:1. in
  Alcotest.(check bool) "approximation" true (Float.abs (mass -. 0.01) < 1e-4);
  (* recommended_a0 puts the mass near theta. *)
  let n = 64 in
  let a0 = Analysis.recommended_a0 ~theta:2. n in
  let mass = Analysis.activation_mass ~a0 ~n ~delta:1. in
  Alcotest.(check bool) "mass near theta" true (mass > 1.8 && mass <= 2.)

let test_recommended_a0_clamped () =
  Alcotest.(check (float 1e-9)) "clamped at 0.5" 0.5
    (Analysis.recommended_a0 ~theta:100. 2);
  Alcotest.(check (float 1e-12)) "1/n^2" (1. /. 4096.)
    (Analysis.recommended_a0 64)

let test_first_activation () =
  (* n=1, a0=0.5: geometric mean 2 ticks. *)
  Alcotest.(check (float 1e-9)) "single node" 2.
    (Analysis.expected_ticks_to_first_activation ~a0:0.5 ~n:1);
  Alcotest.(check bool) "more nodes, faster" true
    (Analysis.expected_ticks_to_first_activation ~a0:0.01 ~n:10
     > Analysis.expected_ticks_to_first_activation ~a0:0.01 ~n:100)

let test_harmonic () =
  Alcotest.(check (float 1e-12)) "H_1" 1. (Analysis.harmonic 1);
  Alcotest.(check (float 1e-12)) "H_4" (1. +. 0.5 +. (1. /. 3.) +. 0.25)
    (Analysis.harmonic 4);
  (* H_n ~ ln n + gamma *)
  Alcotest.(check bool) "asymptotics" true
    (Float.abs (Analysis.harmonic 10_000 -. (log 10_000. +. 0.5772)) < 1e-3)

let test_chang_roberts_prediction () =
  Alcotest.(check (float 1e-9)) "n * H_n" (8. *. Analysis.harmonic 8)
    (Analysis.chang_roberts_expected_messages ~n:8)

let test_ir_phase_success () =
  (* k=1: a single contender always wins its phase. *)
  Alcotest.(check (float 1e-9)) "k=1" 1.
    (Analysis.ir_phase_success_probability ~k:1 ~n:10);
  (* k=2, n=2: ids from {1,2}; unique max unless both draw the same value:
     P = 1/2. *)
  Alcotest.(check (float 1e-9)) "k=2,n=2" 0.5
    (Analysis.ir_phase_success_probability ~k:2 ~n:2);
  (* Probabilities, and more contenders tie more. *)
  let p2 = Analysis.ir_phase_success_probability ~k:2 ~n:16 in
  let p8 = Analysis.ir_phase_success_probability ~k:8 ~n:16 in
  Alcotest.(check bool) "valid probability" true (p2 > 0. && p2 <= 1.);
  Alcotest.(check bool) "more contenders, lower success" true (p8 < p2)

let test_ir_phase_success_monte_carlo () =
  (* Cross-check the closed form against simulation. *)
  let k = 3 and n = 8 in
  let rng = Abe_prob.Rng.create ~seed:99 in
  let trials = 200_000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let draws = Array.init k (fun _ -> Abe_prob.Rng.int_range rng ~lo:1 ~hi:n) in
    let maximum = Array.fold_left max 0 draws in
    let winners =
      Array.fold_left (fun c v -> if v = maximum then c + 1 else c) 0 draws
    in
    if winners = 1 then incr hits
  done;
  let measured = float_of_int !hits /. float_of_int trials in
  let predicted = Analysis.ir_phase_success_probability ~k ~n in
  Alcotest.(check bool) "closed form matches Monte Carlo" true
    (Float.abs (measured -. predicted) < 0.005)

let test_dkr_bound () =
  Alcotest.(check (float 1e-9)) "n(log2 n + 1)" (8. *. 4.)
    (Analysis.dkr_worst_case_messages ~n:8)

let test_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "k_avg p=0" (fun () -> Analysis.k_avg ~p:0.);
  expect_invalid "harmonic 0" (fun () -> Analysis.harmonic 0);
  expect_invalid "ir k=0" (fun () ->
      Analysis.ir_phase_success_probability ~k:0 ~n:5)

let () =
  Alcotest.run "analysis"
    [ ( "retransmission",
        [ Alcotest.test_case "k_avg" `Quick test_k_avg;
          Alcotest.test_case "series" `Quick test_k_avg_matches_series;
          Alcotest.test_case "delay mean" `Quick test_retransmission_delay ] );
      ( "activation",
        [ Alcotest.test_case "expected ticks" `Quick test_expected_ticks;
          Alcotest.test_case "sum_d" `Quick test_sum_d;
          Alcotest.test_case "aggregate invariant" `Quick
            test_aggregate_activation;
          Alcotest.test_case "activation mass" `Quick test_activation_mass;
          Alcotest.test_case "recommended a0" `Quick test_recommended_a0_clamped;
          Alcotest.test_case "first activation" `Quick test_first_activation ] );
      ( "baselines",
        [ Alcotest.test_case "harmonic" `Quick test_harmonic;
          Alcotest.test_case "chang-roberts" `Quick test_chang_roberts_prediction;
          Alcotest.test_case "ir phase success" `Quick test_ir_phase_success;
          Alcotest.test_case "ir monte carlo" `Slow
            test_ir_phase_success_monte_carlo;
          Alcotest.test_case "dkr bound" `Quick test_dkr_bound ] );
      ("validation", [ Alcotest.test_case "errors" `Quick test_validation ]) ]
