open Abe_prob

(* Compare the analytic mean/variance of a distribution against a large
   sample; tolerance scales with the standard error. *)
let check_moments ?(samples = 200_000) ~name dist =
  let rng = Rng.create ~seed:(Hashtbl.hash name) in
  let stats = Stats.create () in
  for _ = 1 to samples do
    let x = Dist.sample dist rng in
    if x < 0. then Alcotest.failf "%s: negative sample %g" name x;
    Stats.add stats x
  done;
  let measured = Stats.mean stats in
  let expected = Dist.mean dist in
  let tolerance = (6. *. Stats.std_error stats) +. 1e-9 in
  if Float.abs (measured -. expected) > tolerance then
    Alcotest.failf "%s: mean %g, expected %g (tolerance %g)" name measured
      expected tolerance;
  (* The sample variance only concentrates when the fourth moment exists;
     Lomax with alpha <= 4 is exempted. *)
  let heavy_tail =
    match dist with Dist.Lomax { alpha; _ } -> alpha <= 4. | _ -> false
  in
  match Dist.variance dist with
  | None -> ()
  | Some _ when heavy_tail -> ()
  | Some v ->
    let measured_v = Stats.variance stats in
    let tol = 0.15 *. Float.max v 1e-6 in
    if Float.abs (measured_v -. v) > tol then
      Alcotest.failf "%s: variance %g, expected %g" name measured_v v

let moment_cases =
  [ ("deterministic", Dist.deterministic 2.5);
    ("uniform", Dist.uniform ~lo:0.5 ~hi:3.5);
    ("exponential", Dist.exponential ~mean:1.7);
    ("erlang", Dist.erlang ~shape:4 ~mean:2.);
    ("hyperexp", Dist.hyperexponential_cv2 ~mean:1. ~cv2:4.);
    ("lomax", Dist.lomax ~alpha:2.5 ~mean:1.);
    ("retransmission", Dist.retransmission ~success:0.25 ~slot:0.5);
    ("shifted", Dist.shifted (Dist.exponential ~mean:1.) ~offset:0.5);
    ("scaled", Dist.scaled (Dist.uniform ~lo:0. ~hi:2.) ~factor:3.);
    ( "mixture",
      Dist.mixture
        [| (0.3, Dist.deterministic 1.); (0.7, Dist.exponential ~mean:2.) |] ) ]

let test_moments () =
  List.iter (fun (name, dist) -> check_moments ~name dist) moment_cases

let test_lomax_infinite_variance () =
  Alcotest.(check (option (float 1e-9)))
    "alpha <= 2 has no variance" None
    (Dist.variance (Dist.lomax ~alpha:1.5 ~mean:1.))

let test_lomax_mean_param () =
  let d = Dist.lomax ~alpha:3. ~mean:2. in
  Alcotest.(check (float 1e-9)) "lomax mean" 2. (Dist.mean d)

let test_cv2 () =
  let check name dist expected =
    match Dist.cv2 dist with
    | None -> Alcotest.failf "%s: cv2 undefined" name
    | Some c ->
      if Float.abs (c -. expected) > 1e-6 then
        Alcotest.failf "%s: cv2 %g, expected %g" name c expected
  in
  check "exponential" (Dist.exponential ~mean:3.) 1.;
  check "deterministic" (Dist.deterministic 3.) 0.;
  check "hyperexp" (Dist.hyperexponential_cv2 ~mean:2. ~cv2:4.) 4.

let test_support_bounds () =
  Alcotest.(check (option (float 1e-9)))
    "uniform bound" (Some 3.)
    (Dist.support_upper_bound (Dist.uniform ~lo:1. ~hi:3.));
  Alcotest.(check (option (float 1e-9)))
    "exponential unbounded" None
    (Dist.support_upper_bound (Dist.exponential ~mean:1.));
  Alcotest.(check bool)
    "deterministic is ABD" true
    (Dist.bounded_support (Dist.deterministic 1.));
  Alcotest.(check bool)
    "retransmission is not ABD" false
    (Dist.bounded_support (Dist.retransmission ~success:0.5 ~slot:1.));
  Alcotest.(check (option (float 1e-9)))
    "shifted scaled bound" (Some 8.)
    (Dist.support_upper_bound
       (Dist.shifted
          (Dist.scaled (Dist.uniform ~lo:0. ~hi:2.) ~factor:3.)
          ~offset:2.))

let test_with_mean () =
  List.iter
    (fun (name, dist) ->
       let rescaled = Dist.with_mean dist ~mean:5. in
       if Float.abs (Dist.mean rescaled -. 5.) > 1e-9 then
         Alcotest.failf "%s: with_mean failed (%g)" name (Dist.mean rescaled))
    moment_cases

let test_same_mean_family () =
  let family = Dist.same_mean_family ~mean:2. in
  Alcotest.(check bool) "family has several members" true
    (List.length family >= 5);
  List.iter
    (fun (name, dist) ->
       if Float.abs (Dist.mean dist -. 2.) > 1e-9 then
         Alcotest.failf "family member %s has mean %g, expected 2" name
           (Dist.mean dist))
    family

let test_validation_errors () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "negative deterministic" (fun () -> Dist.deterministic (-1.));
  expect_invalid "uniform lo=hi" (fun () -> Dist.uniform ~lo:1. ~hi:1.);
  expect_invalid "exponential 0" (fun () -> Dist.exponential ~mean:0.);
  expect_invalid "erlang shape 0" (fun () -> Dist.erlang ~shape:0 ~mean:1.);
  expect_invalid "lomax alpha 1" (fun () -> Dist.lomax ~alpha:1. ~mean:1.);
  expect_invalid "retransmission p=0" (fun () ->
      Dist.retransmission ~success:0. ~slot:1.);
  expect_invalid "retransmission p>1" (fun () ->
      Dist.retransmission ~success:1.5 ~slot:1.);
  expect_invalid "mixture weights" (fun () ->
      Dist.mixture [| (0.5, Dist.deterministic 1.) |]);
  expect_invalid "hyperexp cv2 < 1" (fun () ->
      Dist.hyperexponential_cv2 ~mean:1. ~cv2:0.5);
  expect_invalid "scaled factor 0" (fun () ->
      Dist.scaled (Dist.deterministic 1.) ~factor:0.)

let test_hyperexp_collapses_to_exponential () =
  match Dist.hyperexponential_cv2 ~mean:2. ~cv2:1. with
  | Dist.Exponential { mean } ->
    Alcotest.(check (float 1e-9)) "mean preserved" 2. mean
  | _ -> Alcotest.fail "cv2=1 should be exponential"

let test_pp_smoke () =
  List.iter
    (fun (_, dist) ->
       Alcotest.(check bool) "printable" true
         (String.length (Dist.to_string dist) > 0))
    moment_cases

let test_cdf_closed_forms () =
  let check name dist x expected =
    match Dist.cdf dist x with
    | Some f ->
      if Float.abs (f -. expected) > 1e-9 then
        Alcotest.failf "%s: cdf(%g) = %g, expected %g" name x f expected
    | None -> Alcotest.failf "%s: expected a closed form" name
  in
  check "uniform mid" (Dist.uniform ~lo:0. ~hi:2.) 0.5 0.25;
  check "exponential" (Dist.exponential ~mean:1.) 1. (1. -. exp (-1.));
  check "deterministic below" (Dist.deterministic 2.) 1.9 0.;
  check "deterministic at" (Dist.deterministic 2.) 2. 1.;
  check "negative" (Dist.exponential ~mean:1.) (-1.) 0.;
  check "retransmission step" (Dist.retransmission ~success:0.5 ~slot:1.) 2.5 0.75;
  (match Dist.cdf (Dist.erlang ~shape:4 ~mean:1.) 1. with
   | None -> ()
   | Some _ -> Alcotest.fail "erlang shape>1 should have no closed form");
  (* Scaled/shifted compose. *)
  check "scaled" (Dist.scaled (Dist.exponential ~mean:1.) ~factor:2.) 2.
    (1. -. exp (-1.));
  check "shifted" (Dist.shifted (Dist.exponential ~mean:1.) ~offset:1.) 2.
    (1. -. exp (-1.))

let test_cdf_monotone_and_bounded () =
  List.iter
    (fun (name, dist) ->
       match Dist.cdf dist 0. with
       | None -> ()
       | Some _ ->
         let previous = ref (-1.) in
         for i = 0 to 100 do
           let x = float_of_int i /. 10. in
           match Dist.cdf dist x with
           | Some f ->
             if f < !previous -. 1e-12 || f < 0. || f > 1. then
               Alcotest.failf "%s: cdf not monotone/bounded at %g" name x;
             previous := f
           | None -> Alcotest.failf "%s: cdf vanished at %g" name x
         done)
    moment_cases

let test_ks_accepts_true_distribution () =
  List.iter
    (fun (name, dist) ->
       let rng = Rng.create ~seed:(Hashtbl.hash name + 1) in
       let samples = Array.init 2_000 (fun _ -> Dist.sample dist rng) in
       match Ks.test_dist ~samples ~dist ~alpha:0.01 with
       | None -> Alcotest.failf "%s: expected closed-form cdf" name
       | Some verdict ->
         if not verdict.Ks.accept then
           Alcotest.failf "%s: KS rejected its own sampler (D=%g > %g)" name
             verdict.Ks.d_statistic verdict.Ks.threshold)
    [ ("uniform", Dist.uniform ~lo:0.5 ~hi:3.5);
      ("exponential", Dist.exponential ~mean:1.7);
      ("hyperexp", Dist.hyperexponential_cv2 ~mean:1. ~cv2:4.);
      ("lomax", Dist.lomax ~alpha:2.5 ~mean:1.) ]

let test_ks_rejects_wrong_distribution () =
  (* Exponential samples tested against a uniform CDF must be rejected. *)
  let rng = Rng.create ~seed:42 in
  let samples =
    Array.init 2_000 (fun _ -> Dist.sample (Dist.exponential ~mean:1.) rng)
  in
  let verdict =
    Option.get
      (Ks.test_dist ~samples ~dist:(Dist.uniform ~lo:0. ~hi:2.) ~alpha:0.01)
  in
  Alcotest.(check bool) "rejected" false verdict.Ks.accept

let test_ks_statistic_small_case () =
  (* One sample at the median of U(0,1): D = 1/2. *)
  let d = Ks.statistic ~samples:[| 0.5 |] ~cdf:Fun.id in
  Alcotest.(check (float 1e-9)) "single point" 0.5 d;
  (* Critical values decrease with n and with alpha looser. *)
  Alcotest.(check bool) "ordering" true
    (Ks.critical_value ~n:100 ~alpha:0.01 > Ks.critical_value ~n:100 ~alpha:0.05);
  Alcotest.(check bool) "shrinks with n" true
    (Ks.critical_value ~n:400 ~alpha:0.05 < Ks.critical_value ~n:100 ~alpha:0.05)

let arbitrary_dist =
  let open QCheck.Gen in
  let base =
    oneof
      [ map
          (fun m -> Dist.deterministic (Float.abs m +. 0.1))
          (float_bound_exclusive 10.);
        map (fun hi -> Dist.uniform ~lo:0. ~hi:(hi +. 0.5)) (float_bound_exclusive 10.);
        map (fun m -> Dist.exponential ~mean:(m +. 0.1)) (float_bound_exclusive 10.);
        map
          (fun (k, m) -> Dist.erlang ~shape:(1 + (k mod 6)) ~mean:(m +. 0.1))
          (pair small_nat (float_bound_exclusive 10.));
        map
          (fun p -> Dist.retransmission ~success:(0.05 +. (0.9 *. p)) ~slot:1.)
          (float_bound_exclusive 1.) ]
  in
  QCheck.make base ~print:Dist.to_string

let prop_samples_within_support =
  QCheck.Test.make ~name:"samples within declared support" ~count:200
    QCheck.(pair arbitrary_dist small_int)
    (fun (dist, seed) ->
       let rng = Rng.create ~seed in
       let bound = Dist.support_upper_bound dist in
       List.for_all
         (fun _ ->
            let x = Dist.sample dist rng in
            x >= 0.
            && match bound with None -> true | Some b -> x <= b +. 1e-9)
         (List.init 50 Fun.id))

let prop_with_mean_sets_mean =
  QCheck.Test.make ~name:"with_mean sets the mean" ~count:200
    QCheck.(pair arbitrary_dist (float_range 0.1 50.))
    (fun (dist, target) ->
       Float.abs (Dist.mean (Dist.with_mean dist ~mean:target) -. target)
       < 1e-6 *. target)

let () =
  Alcotest.run "dist"
    [ ( "moments",
        [ Alcotest.test_case "analytic vs sampled" `Slow test_moments;
          Alcotest.test_case "lomax infinite variance" `Quick
            test_lomax_infinite_variance;
          Alcotest.test_case "lomax mean parameterisation" `Quick
            test_lomax_mean_param;
          Alcotest.test_case "cv2" `Quick test_cv2 ] );
      ("support", [ Alcotest.test_case "support bounds" `Quick test_support_bounds ]);
      ( "transforms",
        [ Alcotest.test_case "with_mean" `Quick test_with_mean;
          Alcotest.test_case "same-mean family" `Quick test_same_mean_family;
          Alcotest.test_case "hyperexp cv2=1" `Quick
            test_hyperexp_collapses_to_exponential ] );
      ( "validation",
        [ Alcotest.test_case "constructor errors" `Quick test_validation_errors;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke ] );
      ( "cdf & goodness-of-fit",
        [ Alcotest.test_case "closed forms" `Quick test_cdf_closed_forms;
          Alcotest.test_case "monotone, bounded" `Quick
            test_cdf_monotone_and_bounded;
          Alcotest.test_case "KS accepts samplers" `Quick
            test_ks_accepts_true_distribution;
          Alcotest.test_case "KS rejects mismatch" `Quick
            test_ks_rejects_wrong_distribution;
          Alcotest.test_case "KS small cases" `Quick test_ks_statistic_small_case ]
      );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_samples_within_support; prop_with_mean_sets_mean ] ) ]
