open Abe_sim

let test_basic_recording () =
  let t = Trace.create ~enabled:true () in
  Trace.record t ~time:1. ~source:"a" "hello";
  Trace.record t ~time:2. ~source:"b" "world";
  Alcotest.(check int) "length" 2 (Trace.length t);
  Alcotest.(check int) "dropped" 0 (Trace.dropped t);
  let entries = Trace.entries t in
  Alcotest.(check (list string)) "messages" [ "hello"; "world" ]
    (List.map (fun e -> e.Trace.message) entries);
  Alcotest.(check (list string)) "sources" [ "a"; "b" ]
    (List.map (fun e -> e.Trace.source) entries)

let test_disabled_drops () =
  let t = Trace.create ~enabled:false () in
  Trace.record t ~time:1. ~source:"a" "ignored";
  Trace.recordf t ~time:2. ~source:"a" "also %d" 42;
  Alcotest.(check int) "nothing recorded" 0 (Trace.length t)

let test_toggle () =
  let t = Trace.create ~enabled:false () in
  Trace.set_enabled t true;
  Trace.record t ~time:1. ~source:"a" "now";
  Trace.set_enabled t false;
  Trace.record t ~time:2. ~source:"a" "not";
  Alcotest.(check int) "one entry" 1 (Trace.length t)

let test_capacity_ring () =
  let t = Trace.create ~capacity:3 ~enabled:true () in
  for i = 1 to 5 do
    Trace.record t ~time:(float_of_int i) ~source:"s" (string_of_int i)
  done;
  Alcotest.(check int) "length capped" 3 (Trace.length t);
  Alcotest.(check int) "dropped" 2 (Trace.dropped t);
  Alcotest.(check (list string)) "keeps the tail" [ "3"; "4"; "5" ]
    (List.map (fun e -> e.Trace.message) (Trace.entries t))

let test_recordf_formats () =
  let t = Trace.create ~enabled:true () in
  Trace.recordf t ~time:1. ~source:"s" "x=%d y=%s" 7 "ok";
  match Trace.entries t with
  | [ e ] -> Alcotest.(check string) "formatted" "x=7 y=ok" e.Trace.message
  | _ -> Alcotest.fail "expected one entry"

let test_clear () =
  let t = Trace.create ~enabled:true () in
  Trace.record t ~time:1. ~source:"s" "x";
  Trace.clear t;
  Alcotest.(check int) "empty" 0 (Trace.length t);
  Alcotest.(check int) "dropped reset" 0 (Trace.dropped t)

let test_pp_smoke () =
  let t = Trace.create ~capacity:2 ~enabled:true () in
  for i = 1 to 4 do
    Trace.record t ~time:(float_of_int i) ~source:"s" (string_of_int i)
  done;
  let rendered = Fmt.str "%a" Trace.pp t in
  let contains ~needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions drop count" true
    (contains ~needle:"2 earlier entries dropped" rendered)

let () =
  Alcotest.run "trace"
    [ ( "trace",
        [ Alcotest.test_case "basic" `Quick test_basic_recording;
          Alcotest.test_case "disabled" `Quick test_disabled_drops;
          Alcotest.test_case "toggle" `Quick test_toggle;
          Alcotest.test_case "ring capacity" `Quick test_capacity_ring;
          Alcotest.test_case "recordf" `Quick test_recordf_formats;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "pp" `Quick test_pp_smoke ] ) ]
