open Abe_net

let rng () = Abe_prob.Rng.create ~seed:77

let test_spec_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "zero low" (fun () -> Clock.spec ~s_low:0. ~s_high:1.);
  expect_invalid "inverted" (fun () -> Clock.spec ~s_low:2. ~s_high:1.);
  let s = Clock.spec ~s_low:0.5 ~s_high:2. in
  Alcotest.(check (float 1e-9)) "drift ratio" 4. (Clock.drift_ratio s)

let test_perfect_clock_rate () =
  let c = Clock.create Clock.perfect ~rng:(rng ()) in
  Alcotest.(check (float 1e-9)) "rate 1" 1. (Clock.rate c)

let test_rate_within_bounds () =
  let spec = Clock.spec ~s_low:0.5 ~s_high:2. in
  let r = rng () in
  for _ = 1 to 100 do
    let c = Clock.create spec ~rng:r in
    let rate = Clock.rate c in
    if rate < 0.5 || rate > 2. then Alcotest.failf "rate out of bounds: %g" rate
  done

let test_local_time_linear () =
  let c = Clock.create Clock.perfect ~rng:(rng ()) in
  let t1 = Clock.local_time c ~real:10. in
  let t2 = Clock.local_time c ~real:25. in
  Alcotest.(check (float 1e-9)) "elapsed matches rate" 15. (t2 -. t1)

let test_definition1_bounds () =
  (* The paper's clock condition: s_low (t2-t1) <= C(t2)-C(t1) <= s_high
     (t2-t1). *)
  let spec = Clock.spec ~s_low:0.8 ~s_high:1.3 in
  let r = rng () in
  for _ = 1 to 50 do
    let c = Clock.create spec ~rng:r in
    let dt = 7.3 in
    let dc = Clock.local_time c ~real:(5. +. dt) -. Clock.local_time c ~real:5. in
    if dc < (0.8 *. dt) -. 1e-9 || dc > (1.3 *. dt) +. 1e-9 then
      Alcotest.failf "clock drift outside Definition 1 bounds: %g" dc
  done

let test_inverse () =
  let spec = Clock.spec ~s_low:0.5 ~s_high:2. in
  let c = Clock.create spec ~rng:(rng ()) in
  let real = 12.34 in
  let local = Clock.local_time c ~real in
  Alcotest.(check (float 1e-9)) "roundtrip" real (Clock.real_of_local c ~local)

let test_next_tick_strictly_after () =
  let spec = Clock.spec ~s_low:0.5 ~s_high:2. in
  let r = rng () in
  for _ = 1 to 50 do
    let c = Clock.create spec ~rng:r in
    let after = Abe_prob.Rng.float r 20. in
    let tick = Clock.next_tick c ~after in
    if tick <= after then Alcotest.failf "tick %g not after %g" tick after;
    (* The tick lands on an integer local time. *)
    let local = Clock.local_time c ~real:tick in
    if Float.abs (local -. Float.round local) > 1e-6 then
      Alcotest.failf "tick local time %g not integral" local
  done

let test_tick_sequence_spacing () =
  let c = Clock.create Clock.perfect ~rng:(rng ()) in
  let t1 = Clock.next_tick c ~after:0. in
  let t2 = Clock.next_tick c ~after:t1 in
  let t3 = Clock.next_tick c ~after:t2 in
  Alcotest.(check (float 1e-6)) "unit spacing" 1. (t2 -. t1);
  Alcotest.(check (float 1e-6)) "unit spacing" 1. (t3 -. t2);
  Alcotest.(check (float 1e-9)) "interval" 1. (Clock.tick_interval c)

let test_fast_clock_ticks_more () =
  let fast = Clock.create (Clock.spec ~s_low:2. ~s_high:2.) ~rng:(rng ()) in
  Alcotest.(check (float 1e-9)) "interval halved" 0.5 (Clock.tick_interval fast);
  let t1 = Clock.next_tick fast ~after:0. in
  let t2 = Clock.next_tick fast ~after:t1 in
  Alcotest.(check (float 1e-6)) "spacing 0.5" 0.5 (t2 -. t1)

let prop_tick_monotone_chain =
  QCheck.Test.make ~name:"tick chain strictly increasing" ~count:100
    QCheck.(pair small_int (pair (float_range 0.3 3.) (float_range 0. 2.)))
    (fun (seed, (s, extra)) ->
       let spec = Clock.spec ~s_low:s ~s_high:(s +. extra +. 0.01) in
       let c = Clock.create spec ~rng:(Abe_prob.Rng.create ~seed) in
       let rec chain t remaining =
         remaining = 0
         ||
         let t' = Clock.next_tick c ~after:t in
         t' > t && chain t' (remaining - 1)
       in
       chain 0. 20)

let () =
  Alcotest.run "clock"
    [ ( "clock",
        [ Alcotest.test_case "spec validation" `Quick test_spec_validation;
          Alcotest.test_case "perfect rate" `Quick test_perfect_clock_rate;
          Alcotest.test_case "rate bounds" `Quick test_rate_within_bounds;
          Alcotest.test_case "linear" `Quick test_local_time_linear;
          Alcotest.test_case "Definition 1.2 bounds" `Quick test_definition1_bounds;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "next tick" `Quick test_next_tick_strictly_after;
          Alcotest.test_case "tick spacing" `Quick test_tick_sequence_spacing;
          Alcotest.test_case "fast clock" `Quick test_fast_clock_ticks_more ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_tick_monotone_chain ] ) ]
