  $ abe-sim elect -n 8 --seed 1
  $ abe-sim elect -n 8 --seed 1
  $ abe-sim elect -n 8 --seed 1 --announce
  $ abe-sim elect -n 1
  $ abe-sim elect -n 8 --a0 1.5
  $ abe-sim elect -n 8 --delay retx:2
  $ abe-sim baselines -n 8 --seed 2
  $ abe-sim dist --delay deterministic --delta 2 --samples 100
