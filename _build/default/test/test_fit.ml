open Abe_prob

let points f xs = Array.of_list (List.map (fun x -> (x, f x)) xs)
let xs = [ 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256. ]

let test_linear_exact () =
  let line = Fit.linear (points (fun x -> 3. +. (2. *. x)) xs) in
  Alcotest.(check (float 1e-6)) "intercept" 3. line.Fit.intercept;
  Alcotest.(check (float 1e-6)) "slope" 2. line.Fit.slope;
  Alcotest.(check (float 1e-6)) "r2" 1. line.Fit.r2

let test_linear_noisy () =
  let rng = Rng.create ~seed:4 in
  let noisy =
    points (fun x -> 5. +. (1.5 *. x) +. Rng.normal rng ~mu:0. ~sigma:0.5) xs
  in
  let line = Fit.linear noisy in
  Alcotest.(check bool) "slope near 1.5" true
    (Float.abs (line.Fit.slope -. 1.5) < 0.1);
  Alcotest.(check bool) "r2 high" true (line.Fit.r2 > 0.99)

let test_proportional () =
  let line = Fit.proportional (points (fun x -> 4. *. x) xs) in
  Alcotest.(check (float 1e-6)) "slope" 4. line.Fit.slope;
  Alcotest.(check (float 1e-9)) "intercept" 0. line.Fit.intercept;
  Alcotest.(check (float 1e-6)) "r2" 1. line.Fit.r2

let test_linear_errors () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Fit.linear: needs at least 2 points") (fun () ->
        ignore (Fit.linear [| (1., 1.) |]));
  Alcotest.check_raises "identical x"
    (Invalid_argument "Fit.linear: all x identical") (fun () ->
        ignore (Fit.linear [| (1., 1.); (1., 2.) |]))

let classify f = Fit.classify_growth (points f xs)

let test_classify_constant () =
  Alcotest.(check string) "constant" "O(1)"
    (Fit.growth_to_string (classify (fun _ -> 7.)))

let test_classify_log () =
  Alcotest.(check string) "log" "O(log n)"
    (Fit.growth_to_string (classify (fun x -> 3. *. log x)))

let test_classify_linear () =
  Alcotest.(check string) "linear" "O(n)"
    (Fit.growth_to_string (classify (fun x -> (2. *. x) +. 5.)))

let test_classify_linearithmic () =
  Alcotest.(check string) "n log n" "O(n log n)"
    (Fit.growth_to_string (classify (fun x -> 1.5 *. x *. log x)))

let test_classify_quadratic () =
  Alcotest.(check string) "quadratic" "O(n^2)"
    (Fit.growth_to_string (classify (fun x -> 0.3 *. x *. x)))

let test_classify_noisy_linear () =
  let rng = Rng.create ~seed:9 in
  let noisy =
    points
      (fun x -> (2. *. x) *. (1. +. (0.05 *. Rng.normal rng ~mu:0. ~sigma:1.)))
      xs
  in
  Alcotest.(check string) "noisy linear" "O(n)"
    (Fit.growth_to_string (Fit.classify_growth noisy))

let test_loglog_exponent () =
  let check name f expected =
    let beta = (Fit.loglog (points f xs)).Fit.slope in
    if Float.abs (beta -. expected) > 0.15 then
      Alcotest.failf "%s: beta %.3f, expected %.2f" name beta expected
  in
  check "linear" (fun x -> 3. *. x) 1.;
  check "quadratic" (fun x -> 0.5 *. x *. x) 2.;
  check "sqrt" sqrt 0.5;
  (* n log n has effective exponent slightly above 1 on this range. *)
  let beta = (Fit.loglog (points (fun x -> x *. log x) xs)).Fit.slope in
  Alcotest.(check bool) "n log n above linear" true (beta > 1.1 && beta < 1.6)

let test_loglog_validation () =
  match Fit.loglog [| (1., 0.); (2., 3.) |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of non-positive data"

let test_residual_ordering () =
  let data = points (fun x -> x *. log x) xs in
  let rss_right = Fit.residual_rss data Fit.Linearithmic in
  let rss_wrong = Fit.residual_rss data Fit.Quadratic in
  Alcotest.(check bool) "correct model has smaller residual" true
    (rss_right < rss_wrong)

let prop_classify_recovers_shape =
  QCheck.Test.make ~name:"classifier recovers the generating shape" ~count:100
    QCheck.(pair (int_range 0 2) (float_range 0.5 10.))
    (fun (which, scale) ->
       let f, expected =
         match which with
         | 0 -> ((fun x -> scale *. x), Fit.Linear)
         | 1 -> ((fun x -> scale *. x *. log x), Fit.Linearithmic)
         | _ -> ((fun x -> scale *. x *. x), Fit.Quadratic)
       in
       Fit.classify_growth (points f xs) = expected)

let () =
  Alcotest.run "fit"
    [ ( "least-squares",
        [ Alcotest.test_case "linear exact" `Quick test_linear_exact;
          Alcotest.test_case "linear noisy" `Quick test_linear_noisy;
          Alcotest.test_case "proportional" `Quick test_proportional;
          Alcotest.test_case "errors" `Quick test_linear_errors ] );
      ( "classification",
        [ Alcotest.test_case "constant" `Quick test_classify_constant;
          Alcotest.test_case "logarithmic" `Quick test_classify_log;
          Alcotest.test_case "linear" `Quick test_classify_linear;
          Alcotest.test_case "linearithmic" `Quick test_classify_linearithmic;
          Alcotest.test_case "quadratic" `Quick test_classify_quadratic;
          Alcotest.test_case "noisy linear" `Quick test_classify_noisy_linear;
          Alcotest.test_case "residual ordering" `Quick test_residual_ordering;
          Alcotest.test_case "loglog exponent" `Quick test_loglog_exponent;
          Alcotest.test_case "loglog validation" `Quick test_loglog_validation ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_classify_recovers_shape ] ) ]
