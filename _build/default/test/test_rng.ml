open Abe_prob

let test_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create ~seed:7 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b);
  (* Advancing one does not affect the other. *)
  let _ = Rng.bits64 a in
  let a_next = Rng.bits64 a in
  let b_next = Rng.bits64 b in
  Alcotest.(check bool) "streams diverge after unequal draws" true
    (a_next <> b_next)

let test_split_changes_parent () =
  let a = Rng.create ~seed:3 in
  let reference = Rng.copy a in
  let _child = Rng.split a in
  Alcotest.(check bool) "split advances the parent" true
    (Rng.bits64 a <> Rng.bits64 reference)

let test_split_streams_differ () =
  let parent = Rng.create ~seed:3 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 c1 = Rng.bits64 c2 then incr same
  done;
  Alcotest.(check int) "children never collide on 64 draws" 0 !same

let test_unit_float_range () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let u = Rng.unit_float rng in
    if not (u >= 0. && u < 1.) then
      Alcotest.failf "unit_float out of range: %g" u
  done

let test_unit_float_mean () =
  let rng = Rng.create ~seed:11 in
  let sum = ref 0. in
  let n = 100_000 in
  for _ = 1 to n do
    sum := !sum +. Rng.unit_float rng
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds () =
  let rng = Rng.create ~seed:13 in
  List.iter
    (fun bound ->
       for _ = 1 to 1_000 do
         let v = Rng.int rng bound in
         if v < 0 || v >= bound then
           Alcotest.failf "int %d out of range: %d" bound v
       done)
    [ 1; 2; 3; 7; 10; 100; 1 lsl 30 ]

let test_int_uniform () =
  let rng = Rng.create ~seed:17 in
  let counts = Array.make 6 0 in
  let n = 60_000 in
  for _ = 1 to n do
    let v = Rng.int rng 6 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun face c ->
       if abs (c - 10_000) > 500 then
         Alcotest.failf "face %d count %d too far from 10000" face c)
    counts

let test_int_range () =
  let rng = Rng.create ~seed:19 in
  for _ = 1 to 1_000 do
    let v = Rng.int_range rng ~lo:(-5) ~hi:5 in
    if v < -5 || v > 5 then Alcotest.failf "int_range out of range: %d" v
  done;
  Alcotest.(check int) "degenerate range" 3 (Rng.int_range rng ~lo:3 ~hi:3)

let test_bernoulli_extremes () =
  let rng = Rng.create ~seed:23 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.)
  done

let test_bernoulli_rate () =
  let rng = Rng.create ~seed:29 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.01)

let test_exponential_mean () =
  let rng = Rng.create ~seed:31 in
  let sum = ref 0. in
  let n = 200_000 in
  for _ = 1 to n do
    let x = Rng.exponential rng ~mean:2.5 in
    if x < 0. then Alcotest.fail "negative exponential sample";
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 2.5" true (Float.abs (mean -. 2.5) < 0.05)

let test_geometric_mean () =
  let rng = Rng.create ~seed:37 in
  let sum = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = Rng.geometric rng ~p:0.25 in
    if k < 1 then Alcotest.fail "geometric sample below 1";
    sum := !sum + k
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (Float.abs (mean -. 4.) < 0.1)

let test_geometric_p1 () =
  let rng = Rng.create ~seed:41 in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 means one trial" 1 (Rng.geometric rng ~p:1.)
  done

let test_normal_moments () =
  let rng = Rng.create ~seed:43 in
  let stats = Stats.create () in
  for _ = 1 to 100_000 do
    Stats.add stats (Rng.normal rng ~mu:3. ~sigma:2.)
  done;
  Alcotest.(check bool) "mean near 3" true
    (Float.abs (Stats.mean stats -. 3.) < 0.05);
  Alcotest.(check bool) "stddev near 2" true
    (Float.abs (Stats.stddev stats -. 2.) < 0.05)

let test_shuffle_permutation () =
  let rng = Rng.create ~seed:47 in
  let arr = Array.init 100 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 100 Fun.id) sorted;
  Alcotest.(check bool) "not identity (overwhelming probability)" true
    (arr <> Array.init 100 Fun.id)

let test_pick () =
  let rng = Rng.create ~seed:53 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.pick rng arr in
    Alcotest.(check bool) "picked element member" true (Array.mem v arr)
  done

let test_invalid_args () =
  let rng = Rng.create ~seed:59 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "float nan-ish"
    (Invalid_argument "Rng.float: bound must be positive and finite") (fun () ->
        ignore (Rng.float rng 0.));
  Alcotest.check_raises "bernoulli 1.5"
    (Invalid_argument "Rng.bernoulli: p outside [0,1]") (fun () ->
        ignore (Rng.bernoulli rng 1.5));
  Alcotest.check_raises "geometric 0"
    (Invalid_argument "Rng.geometric: p outside (0,1]") (fun () ->
        ignore (Rng.geometric rng ~p:0.));
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]));
  Alcotest.check_raises "int_range inverted"
    (Invalid_argument "Rng.int_range: requires lo <= hi") (fun () ->
        ignore (Rng.int_range rng ~lo:2 ~hi:1))

let prop_int_in_bounds =
  QCheck.Test.make ~name:"int always within bounds" ~count:1000
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
       let bound = bound + 1 in
       let rng = Rng.create ~seed in
       let v = Rng.int rng bound in
       v >= 0 && v < bound)

let prop_float_in_bounds =
  QCheck.Test.make ~name:"float always within bounds" ~count:1000
    QCheck.(pair small_int (float_bound_exclusive 1000.))
    (fun (seed, bound) ->
       QCheck.assume (bound > 0.);
       let rng = Rng.create ~seed in
       let v = Rng.float rng bound in
       v >= 0. && v < bound)

let prop_geometric_at_least_one =
  QCheck.Test.make ~name:"geometric >= 1" ~count:1000
    QCheck.(pair small_int (float_range 0.01 1.))
    (fun (seed, p) ->
       let rng = Rng.create ~seed in
       Rng.geometric rng ~p >= 1)

let () =
  Alcotest.run "rng"
    [ ( "determinism",
        [ Alcotest.test_case "same seed same stream" `Quick test_deterministic;
          Alcotest.test_case "different seeds differ" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy is independent" `Quick test_copy_independent ] );
      ( "split",
        [ Alcotest.test_case "split advances parent" `Quick test_split_changes_parent;
          Alcotest.test_case "children differ" `Quick test_split_streams_differ ] );
      ( "distributions",
        [ Alcotest.test_case "unit_float range" `Quick test_unit_float_range;
          Alcotest.test_case "unit_float mean" `Quick test_unit_float_mean;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniform" `Quick test_int_uniform;
          Alcotest.test_case "int_range" `Quick test_int_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
          Alcotest.test_case "normal moments" `Quick test_normal_moments ] );
      ( "utilities",
        [ Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "pick member" `Quick test_pick;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_int_in_bounds; prop_float_in_bounds; prop_geometric_at_least_one ]
      ) ]
