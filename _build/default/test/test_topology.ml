open Abe_net

let test_ring_structure () =
  let t = Topology.ring 5 in
  Alcotest.(check int) "nodes" 5 (Topology.node_count t);
  Alcotest.(check int) "links" 5 (Topology.link_count t);
  for i = 0 to 4 do
    Alcotest.(check int) "out degree" 1 (Topology.out_degree t i);
    Alcotest.(check int) "in degree" 1 (Topology.in_degree t i);
    let out = Topology.out_links t i in
    Alcotest.(check int) "successor" ((i + 1) mod 5) out.(0).Topology.dst;
    Alcotest.(check int) "link id = src" i out.(0).Topology.id
  done

let test_ring_connectivity () =
  let t = Topology.ring 7 in
  Alcotest.(check bool) "strongly connected" true (Topology.is_strongly_connected t);
  Alcotest.(check (option int)) "diameter n-1" (Some 6) (Topology.diameter t);
  Alcotest.(check (option int)) "distance wraps" (Some 5)
    (Topology.hop_distance t ~src:3 ~dst:1)

let test_bidirectional_ring () =
  let t = Topology.bidirectional_ring 6 in
  Alcotest.(check int) "links" 12 (Topology.link_count t);
  Alcotest.(check (option int)) "diameter n/2" (Some 3) (Topology.diameter t);
  for i = 0 to 5 do
    Alcotest.(check int) "degree 2" 2 (Topology.out_degree t i)
  done

let test_bidirectional_ring_n2 () =
  let t = Topology.bidirectional_ring 2 in
  Alcotest.(check int) "two links, deduped" 2 (Topology.link_count t)

let test_line () =
  let t = Topology.line 4 in
  Alcotest.(check int) "links" 6 (Topology.link_count t);
  Alcotest.(check (option int)) "diameter" (Some 3) (Topology.diameter t);
  Alcotest.(check int) "end degree" 1 (Topology.out_degree t 0);
  Alcotest.(check int) "middle degree" 2 (Topology.out_degree t 1)

let test_star () =
  let t = Topology.star 5 in
  Alcotest.(check int) "hub degree" 4 (Topology.out_degree t 0);
  Alcotest.(check int) "spoke degree" 1 (Topology.out_degree t 3);
  Alcotest.(check (option int)) "diameter 2" (Some 2) (Topology.diameter t)

let test_complete () =
  let t = Topology.complete 5 in
  Alcotest.(check int) "links" 20 (Topology.link_count t);
  Alcotest.(check (option int)) "diameter 1" (Some 1) (Topology.diameter t)

let test_grid () =
  let t = Topology.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "nodes" 12 (Topology.node_count t);
  (* 2 * (3*3 + 2*4) = horizontal 3*3... directed links: 2*(rows*(cols-1) +
     cols*(rows-1)) = 2*(3*3 + 4*2) = 34 *)
  Alcotest.(check int) "links" 34 (Topology.link_count t);
  Alcotest.(check (option int)) "diameter" (Some 5) (Topology.diameter t)

let test_torus () =
  let t = Topology.torus ~rows:4 ~cols:4 in
  Alcotest.(check int) "nodes" 16 (Topology.node_count t);
  Alcotest.(check int) "regular degree" 4 (Topology.out_degree t 5);
  Alcotest.(check (option int)) "diameter" (Some 4) (Topology.diameter t)

let test_hypercube () =
  let t = Topology.hypercube ~dim:4 in
  Alcotest.(check int) "nodes" 16 (Topology.node_count t);
  Alcotest.(check int) "links" 64 (Topology.link_count t);
  Alcotest.(check (option int)) "diameter = dim" (Some 4) (Topology.diameter t)

let test_random_tree () =
  let rng = Abe_prob.Rng.create ~seed:5 in
  let t = Topology.random_tree ~n:50 ~rng in
  Alcotest.(check int) "edges of a tree" (2 * 49) (Topology.link_count t);
  Alcotest.(check bool) "connected" true (Topology.is_connected t);
  Alcotest.(check bool) "strongly connected" true
    (Topology.is_strongly_connected t)

let test_erdos_renyi_extremes () =
  let rng = Abe_prob.Rng.create ~seed:6 in
  let empty = Topology.erdos_renyi ~n:10 ~p:0. ~rng in
  Alcotest.(check int) "p=0 no links" 0 (Topology.link_count empty);
  Alcotest.(check bool) "p=0 disconnected" false (Topology.is_connected empty);
  let full = Topology.erdos_renyi ~n:10 ~p:1. ~rng in
  Alcotest.(check int) "p=1 complete" 90 (Topology.link_count full)

let test_create_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "self loop" (fun () ->
      Topology.create ~nodes:3 ~edges:[ (1, 1) ]);
  expect_invalid "duplicate edge" (fun () ->
      Topology.create ~nodes:3 ~edges:[ (0, 1); (0, 1) ]);
  expect_invalid "out of range" (fun () ->
      Topology.create ~nodes:3 ~edges:[ (0, 5) ]);
  expect_invalid "ring of 1" (fun () -> Topology.ring 1)

let test_unidirectional_not_symmetric () =
  let t = Topology.ring 4 in
  (* A unidirectional ring is strongly connected but each node has exactly
     one in and one out link, from different neighbours. *)
  let out = Topology.out_links t 1 in
  let in_ = Topology.in_links t 1 in
  Alcotest.(check int) "out to 2" 2 out.(0).Topology.dst;
  Alcotest.(check int) "in from 0" 0 in_.(0).Topology.src

let test_links_indexed () =
  let t = Topology.grid ~rows:2 ~cols:2 in
  Array.iteri
    (fun i l -> Alcotest.(check int) "dense ids" i l.Topology.id)
    (Topology.links t)

let test_spanning_tree_ring () =
  let t = Topology.bidirectional_ring 8 in
  let tree = Topology.bfs_spanning_tree t ~root:0 in
  Alcotest.(check int) "root" 0 tree.Topology.root;
  Alcotest.(check int) "root parent" (-1) tree.Topology.parent.(0);
  Alcotest.(check int) "root depth" 0 tree.Topology.depth.(0);
  (* BFS depths on a bidirectional ring are min(i, n-i). *)
  Array.iteri
    (fun v d ->
       Alcotest.(check int) (Printf.sprintf "depth %d" v) (min v (8 - v)) d)
    tree.Topology.depth;
  (* Parent pointers are consistent with children arrays. *)
  Array.iteri
    (fun v children ->
       Array.iter
         (fun c ->
            Alcotest.(check int) "child's parent" v tree.Topology.parent.(c))
         children)
    tree.Topology.children;
  (* A spanning tree has exactly n-1 edges. *)
  let edges =
    Array.fold_left (fun acc c -> acc + Array.length c) 0 tree.Topology.children
  in
  Alcotest.(check int) "n-1 edges" 7 edges

let test_spanning_tree_unreachable () =
  let rng = Abe_prob.Rng.create ~seed:9 in
  let t = Topology.erdos_renyi ~n:6 ~p:0. ~rng in
  match Topology.bfs_spanning_tree t ~root:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of disconnected topology"

let prop_spanning_tree_depth_is_bfs =
  QCheck.Test.make ~name:"spanning-tree depth equals hop distance" ~count:30
    QCheck.(pair (int_range 2 20) small_int)
    (fun (n, seed) ->
       let rng = Abe_prob.Rng.create ~seed in
       let t = Topology.random_tree ~n ~rng in
       let tree = Topology.bfs_spanning_tree t ~root:0 in
       Array.for_all Fun.id
         (Array.init n (fun v ->
              Topology.hop_distance t ~src:0 ~dst:v
              = Some tree.Topology.depth.(v))))

let prop_ring_diameter =
  QCheck.Test.make ~name:"ring diameter is n-1" ~count:30
    QCheck.(int_range 2 40)
    (fun n -> Topology.diameter (Topology.ring n) = Some (n - 1))

let prop_er_links_bounded =
  QCheck.Test.make ~name:"G(n,p) link count bounded" ~count:50
    QCheck.(pair (int_range 2 30) (float_bound_inclusive 1.))
    (fun (n, p) ->
       let rng = Abe_prob.Rng.create ~seed:(n + int_of_float (p *. 1000.)) in
       let t = Topology.erdos_renyi ~n ~p ~rng in
       let links = Topology.link_count t in
       links mod 2 = 0 && links <= n * (n - 1))

let prop_degrees_sum_to_links =
  QCheck.Test.make ~name:"degree sums equal link count" ~count:30
    QCheck.(int_range 2 20)
    (fun n ->
       let rng = Abe_prob.Rng.create ~seed:n in
       let t = Topology.erdos_renyi ~n ~p:0.4 ~rng in
       let sum_out = ref 0 and sum_in = ref 0 in
       for v = 0 to n - 1 do
         sum_out := !sum_out + Topology.out_degree t v;
         sum_in := !sum_in + Topology.in_degree t v
       done;
       !sum_out = Topology.link_count t && !sum_in = Topology.link_count t)

let () =
  Alcotest.run "topology"
    [ ( "ring",
        [ Alcotest.test_case "structure" `Quick test_ring_structure;
          Alcotest.test_case "connectivity" `Quick test_ring_connectivity;
          Alcotest.test_case "bidirectional" `Quick test_bidirectional_ring;
          Alcotest.test_case "bidirectional n=2" `Quick test_bidirectional_ring_n2;
          Alcotest.test_case "not symmetric" `Quick
            test_unidirectional_not_symmetric ] );
      ( "families",
        [ Alcotest.test_case "line" `Quick test_line;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "random tree" `Quick test_random_tree;
          Alcotest.test_case "erdos-renyi extremes" `Quick
            test_erdos_renyi_extremes ] );
      ( "validation",
        [ Alcotest.test_case "bad edges" `Quick test_create_validation;
          Alcotest.test_case "dense link ids" `Quick test_links_indexed ] );
      ( "spanning-tree",
        [ Alcotest.test_case "on a ring" `Quick test_spanning_tree_ring;
          Alcotest.test_case "unreachable" `Quick test_spanning_tree_unreachable ]
      );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_ring_diameter; prop_er_links_bounded; prop_degrees_sum_to_links;
            prop_spanning_tree_depth_is_bfs ]
      ) ]
