open Abe_net
open Abe_synchronizer

module Ref_bfs = Reference.Make (Sync_alg.Bfs)
module Ref_flood = Reference.Make (Sync_alg.Flood_max)
module Alpha_bfs = Alpha.Make (Sync_alg.Bfs)
module Alpha_flood = Alpha.Make (Sync_alg.Flood_max)
module Beta_bfs = Beta.Make (Sync_alg.Bfs)
module Beta_flood = Beta.Make (Sync_alg.Flood_max)
module Abd_bfs = Abd_sync.Make (Sync_alg.Bfs)
module Gamma_bfs = Gamma.Make (Sync_alg.Bfs)

let ring_distances n =
  Array.init n (fun i -> Some (min i (n - i)))

let test_reference_bfs_ring () =
  let n = 12 in
  let r =
    Ref_bfs.run ~seed:1 ~topology:(Topology.bidirectional_ring n)
      ~pulses:((n / 2) + 2)
  in
  Alcotest.(check bool) "distances correct" true
    (Array.map Sync_alg.Bfs.distance r.Ref_bfs.states = ring_distances n)

let test_reference_bfs_sparse () =
  (* BFS is sparse: each node sends on each link at most once, so payload
     <= number of directed links. *)
  let n = 16 in
  let topology = Topology.bidirectional_ring n in
  let r = Ref_bfs.run ~seed:1 ~topology ~pulses:(n / 2 + 2) in
  Alcotest.(check bool) "payload bounded by links" true
    (r.Ref_bfs.payload_messages <= Topology.link_count topology)

let test_reference_flood_converges () =
  let n = 10 in
  let r =
    Ref_flood.run ~seed:1 ~topology:(Topology.bidirectional_ring n)
      ~pulses:((n / 2) + 1)
  in
  Array.iter
    (fun st ->
       Alcotest.(check int) "max is n" n (Sync_alg.Flood_max.current_max st))
    r.Ref_flood.states

let test_reference_bfs_on_grid () =
  let topology = Topology.grid ~rows:4 ~cols:5 in
  let r = Ref_bfs.run ~seed:1 ~topology ~pulses:12 in
  (* Node 0 is a corner: distance of node (r,c) is r + c. *)
  Array.iteri
    (fun v st ->
       let row = v / 5 and col = v mod 5 in
       Alcotest.(check (option int))
         (Printf.sprintf "node %d" v)
         (Some (row + col))
         (Sync_alg.Bfs.distance st))
    r.Ref_bfs.states

let abe_delay = Delay_model.abe_exponential ~delta:1.

let test_alpha_bfs_correct_on_abe () =
  let n = 10 in
  let topology = Topology.bidirectional_ring n in
  let pulses = (n / 2) + 2 in
  let r = Alpha_bfs.run ~seed:2 ~topology ~delay:abe_delay ~pulses () in
  Alcotest.(check bool) "completed" true r.Alpha_bfs.completed;
  Alcotest.(check bool) "distances match reference" true
    (Array.map Sync_alg.Bfs.distance r.Alpha_bfs.states = ring_distances n)

let test_alpha_flood_correct_on_abe () =
  let n = 8 in
  let topology = Topology.bidirectional_ring n in
  let r =
    Alpha_flood.run ~seed:3 ~topology ~delay:abe_delay ~pulses:((n / 2) + 1) ()
  in
  Alcotest.(check bool) "completed" true r.Alpha_flood.completed;
  Array.iter
    (fun st ->
       Alcotest.(check int) "max is n" n (Sync_alg.Flood_max.current_max st))
    r.Alpha_flood.states

let test_alpha_control_cost_theorem1 () =
  (* Theorem 1's shape: the alpha synchroniser spends >= n control messages
     per pulse no matter how sparse the algorithm is.  Safes alone are
     2m = 2n per pulse on a bidirectional ring. *)
  let n = 12 in
  let topology = Topology.bidirectional_ring n in
  let pulses = 8 in
  let r = Alpha_bfs.run ~seed:4 ~topology ~delay:abe_delay ~pulses () in
  Alcotest.(check bool) "control per pulse >= n" true
    (r.Alpha_bfs.control_per_pulse >= float_of_int n);
  Alcotest.(check int) "safes = 2m * pulses"
    (Topology.link_count topology * pulses)
    r.Alpha_bfs.safe_messages;
  Alcotest.(check int) "one ack per payload" r.Alpha_bfs.payload_messages
    r.Alpha_bfs.ack_messages

let test_alpha_correct_under_drift_and_proc () =
  let n = 8 in
  let topology = Topology.bidirectional_ring n in
  let r =
    Alpha_bfs.run
      ~proc_delay:(Abe_prob.Dist.exponential ~mean:0.1)
      ~clock_spec:(Clock.spec ~s_low:0.5 ~s_high:2.)
      ~seed:5 ~topology ~delay:abe_delay ~pulses:((n / 2) + 2) ()
  in
  Alcotest.(check bool) "completed" true r.Alpha_bfs.completed;
  Alcotest.(check bool) "correct" true
    (Array.map Sync_alg.Bfs.distance r.Alpha_bfs.states = ring_distances n)

let test_alpha_rejects_asymmetric () =
  match
    Alpha_bfs.run ~seed:1 ~topology:(Topology.ring 4) ~delay:abe_delay
      ~pulses:2 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of unidirectional ring"

let test_beta_bfs_correct_on_abe () =
  let n = 10 in
  let topology = Topology.bidirectional_ring n in
  let pulses = (n / 2) + 2 in
  let r = Beta_bfs.run ~seed:6 ~topology ~delay:abe_delay ~pulses () in
  Alcotest.(check bool) "completed" true r.Beta_bfs.completed;
  Alcotest.(check bool) "distances match reference" true
    (Array.map Sync_alg.Bfs.distance r.Beta_bfs.states = ring_distances n)

let test_beta_flood_correct_on_abe () =
  let n = 8 in
  let topology = Topology.bidirectional_ring n in
  let r =
    Beta_flood.run ~seed:7 ~topology ~delay:abe_delay ~pulses:((n / 2) + 1) ()
  in
  Alcotest.(check bool) "completed" true r.Beta_flood.completed;
  Array.iter
    (fun st ->
       Alcotest.(check int) "max is n" n (Sync_alg.Flood_max.current_max st))
    r.Beta_flood.states

let test_beta_tree_cost () =
  (* Tree control cost: exactly 2(n-1) tree messages per completed
     round-trip: (n-1) readies up, (n-1) pulses down, for every pulse
     except that the final release also costs (n-1) pulses.  Total tree
     messages = pulses * 2(n-1). *)
  let n = 12 in
  let topology = Topology.bidirectional_ring n in
  let pulses = 6 in
  let r = Beta_bfs.run ~seed:8 ~topology ~delay:abe_delay ~pulses () in
  Alcotest.(check int) "tree messages = 2(n-1) * pulses"
    (2 * (n - 1) * pulses)
    r.Beta_bfs.tree_messages;
  Alcotest.(check int) "one ack per payload" r.Beta_bfs.payload_messages
    r.Beta_bfs.ack_messages;
  (* Theorem 1: still at least n-1 control messages per pulse. *)
  Alcotest.(check bool) "control/pulse >= n-1" true
    (r.Beta_bfs.control_per_pulse >= float_of_int (n - 1))

let test_beta_cheaper_than_alpha () =
  let n = 16 in
  let topology = Topology.bidirectional_ring n in
  let pulses = 10 in
  let alpha = Alpha_bfs.run ~seed:9 ~topology ~delay:abe_delay ~pulses () in
  let beta = Beta_bfs.run ~seed:9 ~topology ~delay:abe_delay ~pulses () in
  Alcotest.(check bool) "beta control below alpha" true
    (beta.Beta_bfs.control_messages < alpha.Alpha_bfs.control_messages)

let test_beta_on_tree_topology () =
  let rng = Abe_prob.Rng.create ~seed:4 in
  let topology = Topology.random_tree ~n:15 ~rng in
  let r = Beta_bfs.run ~seed:10 ~topology ~delay:abe_delay ~pulses:16 () in
  Alcotest.(check bool) "completed" true r.Beta_bfs.completed;
  (* Compare against the reference on the same topology. *)
  let reference = Ref_bfs.run ~seed:10 ~topology ~pulses:16 in
  Alcotest.(check bool) "matches reference" true
    (Array.map Sync_alg.Bfs.distance r.Beta_bfs.states
     = Array.map Sync_alg.Bfs.distance reference.Ref_bfs.states)

let test_beta_rejects_disconnected () =
  let rng = Abe_prob.Rng.create ~seed:5 in
  let topology = Topology.erdos_renyi ~n:10 ~p:0. ~rng in
  match Beta_bfs.run ~seed:1 ~topology ~delay:abe_delay ~pulses:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of disconnected topology"

let test_gamma_clustering_structure () =
  let topology = Topology.bidirectional_ring 12 in
  let c = Gamma.cluster topology ~radius:1 in
  Alcotest.(check int) "every node clustered" 12
    (Array.length c.Gamma.cluster_of);
  (* Radius-1 balls on a ring have at most 3 nodes. *)
  let sizes = Array.make c.Gamma.cluster_count 0 in
  Array.iter (fun cl -> sizes.(cl) <- sizes.(cl) + 1) c.Gamma.cluster_of;
  Array.iter
    (fun s -> if s < 1 || s > 3 then Alcotest.failf "cluster size %d" s)
    sizes;
  (* Tree edges total n - #clusters. *)
  let tree_edges =
    Array.fold_left
      (fun acc ch -> acc + Array.length ch)
      0 c.Gamma.tree_children
  in
  Alcotest.(check int) "tree edges" (12 - c.Gamma.cluster_count) tree_edges;
  (* Preferred links connect distinct adjacent clusters. *)
  List.iter
    (fun (a, b) ->
       if c.Gamma.cluster_of.(a) = c.Gamma.cluster_of.(b) then
         Alcotest.fail "preferred link inside a cluster")
    c.Gamma.preferred

let test_gamma_radius_zero_all_singletons () =
  let topology = Topology.bidirectional_ring 8 in
  let c = Gamma.cluster topology ~radius:0 in
  Alcotest.(check int) "n clusters" 8 c.Gamma.cluster_count;
  (* Every adjacent pair of singleton clusters shares a preferred link. *)
  Alcotest.(check int) "preferred = undirected edges" 8
    (List.length c.Gamma.preferred)

let test_gamma_big_radius_one_cluster () =
  let topology = Topology.bidirectional_ring 8 in
  let c = Gamma.cluster topology ~radius:10 in
  Alcotest.(check int) "one cluster" 1 c.Gamma.cluster_count;
  Alcotest.(check (list (pair int int))) "no preferred links" []
    c.Gamma.preferred

let test_gamma_bfs_correct_on_abe () =
  List.iter
    (fun radius ->
       let n = 12 in
       let topology = Topology.bidirectional_ring n in
       let pulses = (n / 2) + 2 in
       let r =
         Gamma_bfs.run ~seed:(20 + radius) ~topology ~delay:abe_delay ~pulses
           ~radius ()
       in
       Alcotest.(check bool)
         (Printf.sprintf "radius %d completed" radius)
         true r.Gamma_bfs.completed;
       Alcotest.(check bool)
         (Printf.sprintf "radius %d correct" radius)
         true
         (Array.map Sync_alg.Bfs.distance r.Gamma_bfs.states = ring_distances n))
    [ 0; 1; 2; 6 ]

let test_gamma_on_grid () =
  let topology = Topology.grid ~rows:3 ~cols:4 in
  let r =
    Gamma_bfs.run ~seed:5 ~topology ~delay:abe_delay ~pulses:8 ~radius:1 ()
  in
  Alcotest.(check bool) "completed" true r.Gamma_bfs.completed;
  let reference = Ref_bfs.run ~seed:5 ~topology ~pulses:8 in
  Alcotest.(check bool) "matches reference" true
    (Array.map Sync_alg.Bfs.distance r.Gamma_bfs.states
     = Array.map Sync_alg.Bfs.distance reference.Ref_bfs.states)

let test_gamma_interpolates_cost () =
  (* Theorem 1 floor: whatever the radius, control/pulse stays >= n-ish;
     and a single cluster behaves like beta (4 tree messages per edge). *)
  let n = 16 in
  let topology = Topology.bidirectional_ring n in
  let pulses = 10 in
  let run radius =
    Gamma_bfs.run ~seed:7 ~topology ~delay:abe_delay ~pulses ~radius ()
  in
  let single = run 20 in
  Alcotest.(check int) "one cluster" 1 single.Gamma_bfs.clusters;
  Alcotest.(check int) "tree messages 4(n-1) per pulse"
    (4 * (n - 1) * pulses)
    single.Gamma_bfs.tree_messages;
  Alcotest.(check int) "no preferred messages" 0
    single.Gamma_bfs.preferred_messages;
  let singletons = run 0 in
  Alcotest.(check int) "n clusters" n singletons.Gamma_bfs.clusters;
  Alcotest.(check int) "no tree messages" 0 singletons.Gamma_bfs.tree_messages;
  Alcotest.(check int) "preferred 2n per pulse" (2 * n * pulses)
    singletons.Gamma_bfs.preferred_messages;
  List.iter
    (fun radius ->
       let r = run radius in
       Alcotest.(check bool)
         (Printf.sprintf "radius %d floor" radius)
         true
         (r.Gamma_bfs.control_per_pulse >= float_of_int (n - 1)))
    [ 0; 1; 2; 20 ]

let test_gamma_under_drift_and_processing () =
  let n = 10 in
  let topology = Topology.bidirectional_ring n in
  let r =
    Gamma_bfs.run
      ~proc_delay:(Abe_prob.Dist.exponential ~mean:0.1)
      ~clock_spec:(Clock.spec ~s_low:0.5 ~s_high:2.)
      ~seed:31 ~topology ~delay:abe_delay ~pulses:((n / 2) + 2) ~radius:1 ()
  in
  Alcotest.(check bool) "completed" true r.Gamma_bfs.completed;
  Alcotest.(check bool) "correct" true
    (Array.map Sync_alg.Bfs.distance r.Gamma_bfs.states = ring_distances n)

let test_required_window () =
  (* Perfect clocks: window ~ hard bound + slack. *)
  (match Abd_sync.required_window ~hard_bound:2. ~clock_spec:Clock.perfect ~pulses:50 with
   | Some w -> Alcotest.(check bool) "reasonable window" true (w >= 3 && w <= 8)
   | None -> Alcotest.fail "perfect clocks must admit a window");
  (* Heavy drift over a long horizon: impossible. *)
  (match
     Abd_sync.required_window ~hard_bound:2.
       ~clock_spec:(Clock.spec ~s_low:0.5 ~s_high:2.) ~pulses:100
   with
   | None -> ()
   | Some w -> Alcotest.failf "expected None, got window %d" w)

let test_abd_sync_zero_violations_on_abd () =
  let n = 10 in
  let topology = Topology.bidirectional_ring n in
  let pulses = (n / 2) + 2 in
  let abd_delay = Delay_model.abd_uniform ~bound:2. in
  let window =
    Option.get
      (Abd_sync.required_window ~hard_bound:2. ~clock_spec:Clock.perfect ~pulses)
  in
  for seed = 1 to 10 do
    let r = Abd_bfs.run ~seed ~topology ~delay:abd_delay ~pulses ~window () in
    Alcotest.(check bool) "completed" true r.Abd_bfs.completed;
    Alcotest.(check int) "zero violations under the hard bound" 0
      r.Abd_bfs.violations;
    Alcotest.(check bool) "correct result" true
      (Array.map Sync_alg.Bfs.distance r.Abd_bfs.states = ring_distances n)
  done

let test_abd_sync_violations_on_abe () =
  (* Same mean delay but unbounded support: some messages must be late.
     With exponential(1) delays and a window of ~5 ticks the tail
     probability per message is e^-4 ~ 2%%; across seeds we must see
     violations. *)
  let n = 16 in
  let topology = Topology.bidirectional_ring n in
  let pulses = (n / 2) + 2 in
  let window =
    Option.get
      (Abd_sync.required_window ~hard_bound:2. ~clock_spec:Clock.perfect ~pulses)
  in
  let total_violations = ref 0 in
  for seed = 1 to 20 do
    let r = Abd_bfs.run ~seed ~topology ~delay:abe_delay ~pulses ~window () in
    total_violations := !total_violations + r.Abd_bfs.violations
  done;
  Alcotest.(check bool) "late messages appear on ABE delays" true
    (!total_violations > 0)

let test_abd_sync_message_free () =
  (* The whole point: no acks, no safes — payload only. *)
  let n = 10 in
  let topology = Topology.bidirectional_ring n in
  let pulses = (n / 2) + 2 in
  let abd_delay = Delay_model.abd_uniform ~bound:2. in
  let r = Abd_bfs.run ~seed:2 ~topology ~delay:abd_delay ~pulses ~window:6 () in
  Alcotest.(check bool) "payload below n per pulse" true
    (r.Abd_bfs.payload_messages < n * pulses);
  (* BFS sends each link once: exactly 2n payload messages on the ring. *)
  Alcotest.(check int) "bfs payload = 2n" (2 * n) r.Abd_bfs.payload_messages

let test_measure_report () =
  let report = Measure.bfs_comparison ~seed:1 ~n:16 ~delta:1. () in
  Alcotest.(check bool) "alpha correct" true report.Measure.alpha_on_abe.Measure.correct;
  Alcotest.(check bool) "alpha pays >= n per pulse" true
    (report.Measure.alpha_on_abe.Measure.control_per_pulse
     >= float_of_int report.Measure.n);
  Alcotest.(check bool) "abd-on-abd correct, zero violations" true
    (report.Measure.abd_on_abd.Measure.correct
     && report.Measure.abd_on_abd.Measure.violations = 0);
  Alcotest.(check bool) "abd-on-abe has violations" true
    (report.Measure.abd_on_abe.Measure.violations > 0)

let prop_gamma_clustering_invariants =
  QCheck.Test.make ~name:"gamma clustering invariants on random trees"
    ~count:40
    QCheck.(triple (int_range 4 24) (int_range 0 4) small_int)
    (fun (n, radius, seed) ->
       let rng = Abe_prob.Rng.create ~seed in
       let topology = Topology.random_tree ~n ~rng in
       let c = Gamma.cluster topology ~radius in
       (* Every node clustered; tree edges = n - clusters; preferred links
          cross clusters; parents are in the same cluster. *)
       Array.for_all (fun cl -> cl >= 0 && cl < c.Gamma.cluster_count)
         c.Gamma.cluster_of
       && Array.fold_left (fun acc ch -> acc + Array.length ch) 0
            c.Gamma.tree_children
          = n - c.Gamma.cluster_count
       && List.for_all
            (fun (a, b) -> c.Gamma.cluster_of.(a) <> c.Gamma.cluster_of.(b))
            c.Gamma.preferred
       && Array.for_all Fun.id
            (Array.init n (fun v ->
                 c.Gamma.tree_parent.(v) < 0
                 || c.Gamma.cluster_of.(c.Gamma.tree_parent.(v))
                    = c.Gamma.cluster_of.(v))))

let prop_alpha_deterministic =
  QCheck.Test.make ~name:"alpha runs are seed-deterministic" ~count:10
    QCheck.(int_range 1 100)
    (fun seed ->
       let topology = Topology.bidirectional_ring 6 in
       let run () =
         Alpha_bfs.run ~seed ~topology ~delay:abe_delay ~pulses:5 ()
       in
       let a = run () and b = run () in
       a.Alpha_bfs.payload_messages = b.Alpha_bfs.payload_messages
       && a.Alpha_bfs.control_messages = b.Alpha_bfs.control_messages)

let prop_reference_flood_always_max =
  QCheck.Test.make ~name:"flood-max converges on connected topologies"
    ~count:30
    QCheck.(pair (int_range 4 20) small_int)
    (fun (n, seed) ->
       let topology = Topology.bidirectional_ring n in
       let r = Ref_flood.run ~seed ~topology ~pulses:((n / 2) + 1) in
       Array.for_all
         (fun st -> Sync_alg.Flood_max.current_max st = n)
         r.Ref_flood.states)

let () =
  Alcotest.run "synchronizer"
    [ ( "reference",
        [ Alcotest.test_case "bfs on ring" `Quick test_reference_bfs_ring;
          Alcotest.test_case "bfs sparse" `Quick test_reference_bfs_sparse;
          Alcotest.test_case "flood converges" `Quick test_reference_flood_converges;
          Alcotest.test_case "bfs on grid" `Quick test_reference_bfs_on_grid ] );
      ( "alpha",
        [ Alcotest.test_case "bfs correct on ABE" `Quick
            test_alpha_bfs_correct_on_abe;
          Alcotest.test_case "flood correct on ABE" `Quick
            test_alpha_flood_correct_on_abe;
          Alcotest.test_case "Theorem 1 control cost" `Quick
            test_alpha_control_cost_theorem1;
          Alcotest.test_case "drift + processing" `Quick
            test_alpha_correct_under_drift_and_proc;
          Alcotest.test_case "asymmetric rejected" `Quick
            test_alpha_rejects_asymmetric ] );
      ( "beta",
        [ Alcotest.test_case "bfs correct on ABE" `Quick
            test_beta_bfs_correct_on_abe;
          Alcotest.test_case "flood correct on ABE" `Quick
            test_beta_flood_correct_on_abe;
          Alcotest.test_case "tree cost" `Quick test_beta_tree_cost;
          Alcotest.test_case "cheaper than alpha" `Quick
            test_beta_cheaper_than_alpha;
          Alcotest.test_case "tree topology" `Quick test_beta_on_tree_topology;
          Alcotest.test_case "disconnected rejected" `Quick
            test_beta_rejects_disconnected ] );
      ( "gamma",
        [ Alcotest.test_case "clustering structure" `Quick
            test_gamma_clustering_structure;
          Alcotest.test_case "radius 0" `Quick
            test_gamma_radius_zero_all_singletons;
          Alcotest.test_case "big radius" `Quick
            test_gamma_big_radius_one_cluster;
          Alcotest.test_case "bfs correct on ABE" `Quick
            test_gamma_bfs_correct_on_abe;
          Alcotest.test_case "grid" `Quick test_gamma_on_grid;
          Alcotest.test_case "cost interpolation" `Quick
            test_gamma_interpolates_cost;
          Alcotest.test_case "drift + processing" `Quick
            test_gamma_under_drift_and_processing ] );
      ( "abd-sync",
        [ Alcotest.test_case "required window" `Quick test_required_window;
          Alcotest.test_case "zero violations on ABD" `Quick
            test_abd_sync_zero_violations_on_abd;
          Alcotest.test_case "violations on ABE" `Quick
            test_abd_sync_violations_on_abe;
          Alcotest.test_case "message free" `Quick test_abd_sync_message_free ] );
      ("measure", [ Alcotest.test_case "bfs comparison (E6)" `Quick test_measure_report ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_gamma_clustering_invariants;
            prop_alpha_deterministic;
            prop_reference_flood_always_max ] ) ]
